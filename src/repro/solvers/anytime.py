"""Anytime schedule refinement: budgeted local search over validated schedules.

The structured strategies and the greedy Belady baseline produce *valid* but
often sub-optimal pebblings, and on DAGs too large for the exhaustive A* the
library previously reported the lower-bound gap and stopped.  This module
closes part of that gap: given any legal RBP/PRBP schedule it runs a
local-search refinement under an explicit step and/or wall-clock budget and
returns a schedule that is **never costlier than its input** (cost
monotonicity is enforced by construction — a mutation is kept only when the
full replay through the game engine is legal and strictly cheaper).

Refinement operators
--------------------
* **I/O elision** — peephole removal of provably wasteful I/O: loads of
  values already in fast memory, saves of values already in slow memory,
  saves of non-sink values that are never loaded again, and
  ``delete …​ load`` round trips whose value could have stayed red (the
  Belady rule mispredicts these whenever capacity frees up shortly after an
  eviction).
* **Eviction re-decision** — the realized processing order is extracted from
  the current schedule and the whole pebbling is rebuilt by the greedy
  machinery with Belady eviction against that *realized* future; this lets a
  structured schedule borrow the baseline's eviction policy and vice versa.
* **Order perturbation** — a node is moved to a different position inside
  its topological mobility window and the schedule is rebuilt; this explores
  processing orders the deterministic heuristics never try.
* **Sliding-window move reordering** — one move is displaced within a small
  window of the move list, the mutated schedule is replayed for legality,
  and the elision pass then harvests any round trip the reordering exposed.

A small **beam-search constructor** (:func:`beam_construct`) over game
configurations complements the local search on mid-size DAGs: it is seeded
with the cost of the best greedy/structured schedule (used as a
branch-and-bound ceiling) and returns a cheaper schedule when it finds one
within its expansion budget.

Determinism
-----------
All randomized operators draw from a single ``random.Random(seed)``; with a
pure step budget (no wall-clock limit) the refined schedule is a
deterministic, bit-identical function of ``(schedule, steps, seed)``.  A
wall-clock budget (``time_budget_s``) can only truncate the search earlier,
which is exactly why results produced under one are treated as
non-cacheable by :mod:`repro.api.cache`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.dag import ComputationalDAG
from ..core.exceptions import PebblingError, SolverError
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.prbp import PRBPGame, run_prbp_schedule
from ..core.rbp import RBPGame, run_rbp_schedule
from ..core.schedule_ir import (
    OP_CLEAR,
    OP_COMPUTE,
    OP_DELETE,
    OP_LOAD,
    OP_SAVE,
    decode_moves,
    encode_moves,
    replay_io_cost,
)
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..core.variants import GameVariant
from .greedy import greedy_rbp_schedule, topological_prbp_schedule

__all__ = [
    "DEFAULT_REFINE_STEPS",
    "BEAM_NODE_LIMIT",
    "RefinementTrajectory",
    "refine_schedule",
    "beam_construct",
    "last_refinement_trajectory",
    "schedule_io_count",
]

Schedule = Union[RBPSchedule, PRBPSchedule]
Move = Union[RBPMove, PRBPMove]

#: The refiner's working form: one ``(op, node, arg)`` row per move, as
#: produced by :func:`repro.core.schedule_ir.encode_moves`.  Every mutation
#: operator manipulates rows and every candidate is scored by the columnar
#: replay kernel — Move objects are only materialized at the boundaries.
Row = Tuple[int, int, int]

#: Default mutation-attempt budget when neither ``steps`` nor a wall-clock
#: budget is given.  Sized so the auto portfolio's final improvement pass
#: stays in the low-millisecond range on quick-tier workloads.
DEFAULT_REFINE_STEPS = 96

#: Largest node count for which the beam-search constructor is attempted by
#: default (branch-and-bound over full game configurations; past this size
#: the local search alone is the better use of the budget).
BEAM_NODE_LIMIT = 20

#: Elision sweeps per phase — each sweep re-derives candidates after a
#: successful removal, so the cap only guards against pathological inputs.
_MAX_ELISION_SWEEPS = 25

#: Half-width of the sliding reorder window (moves are displaced by at most
#: this many positions in either direction).
_REORDER_WINDOW = 12


@dataclass(frozen=True)
class RefinementTrajectory:
    """How one refinement run progressed from its seed to its final schedule.

    Attributes
    ----------
    initial_cost:
        I/O cost of the schedule the refinement started from.
    refined_cost:
        I/O cost of the returned schedule (``<= initial_cost`` always).
    steps:
        Mutation attempts actually spent (each attempt replays a candidate
        schedule through the engine).
    accepted:
        How many attempts produced a strictly cheaper legal schedule.
    time_to_best_s:
        Wall-clock seconds from the start of refinement until the final best
        schedule was first reached (0.0 when the seed was never improved).
    wall_time_s:
        Total wall-clock seconds spent refining.
    seed:
        RNG seed that drove the randomized operators.
    seed_solver:
        Provenance of the schedule the refinement started from (a registry
        solver name, ``"beam"``, or ``"input"``).
    """

    initial_cost: int
    refined_cost: int
    steps: int
    accepted: int
    time_to_best_s: float
    wall_time_s: float
    seed: int
    seed_solver: str = "input"

    @property
    def improvement(self) -> int:
        """I/O operations shaved off the initial schedule."""
        return self.initial_cost - self.refined_cost


_LAST_TRAJECTORY: Optional[RefinementTrajectory] = None


def last_refinement_trajectory() -> Optional[RefinementTrajectory]:
    """Trajectory of the most recent refinement run in this process.

    Mirrors :func:`repro.solvers.exhaustive.last_search_telemetry`: the
    dispatch layer snapshots this before and after a solver run to decide
    whether the run went through the anytime engine.
    """
    return _LAST_TRAJECTORY


# --------------------------------------------------------------------------- #
# budget & replay helpers
# --------------------------------------------------------------------------- #


class _Budget:
    """Step/wall-clock budget shared by every operator of one refinement run.

    The wall clock is consulted only when ``time_budget_s`` is set, so a
    pure step budget keeps the whole search clock-independent (and therefore
    deterministic for a fixed seed).
    """

    def __init__(self, max_steps: Optional[int], time_budget_s: Optional[float]) -> None:
        self.max_steps = max_steps
        self.time_budget_s = time_budget_s
        self.start = time.perf_counter()
        self.steps = 0

    def spend(self) -> bool:
        """Consume one mutation attempt; False once the budget is exhausted."""
        if self.max_steps is not None and self.steps >= self.max_steps:
            return False
        if (
            self.time_budget_s is not None
            and time.perf_counter() - self.start > self.time_budget_s
        ):
            return False
        self.steps += 1
        return True

    def elapsed(self) -> float:
        return time.perf_counter() - self.start


def _game_of(schedule: Schedule) -> str:
    return "rbp" if isinstance(schedule, RBPSchedule) else "prbp"


def schedule_io_count(schedule: Schedule) -> int:
    """I/O cost of an *already validated* schedule — just its I/O move count.

    The single definition of "schedule cost without a replay"; the adapter
    layer uses it to rank seed schedules, and the refinement internals use
    it on rebuilds that are legal by construction.
    """
    return _io_count(schedule.moves)


def _io_count(moves: Sequence[Move]) -> int:
    return sum(1 for mv in moves if mv.is_io)


def _replay_cost(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[Move],
    variant: GameVariant,
    game: str,
) -> Optional[int]:
    """I/O cost of a move list via the *engine*, or None if it does not replay.

    Kept for the one-time validation of the input schedule: the engines stay
    the semantics definition, so refinement only ever starts from a schedule
    the engine itself accepts.  Candidate scoring inside the search runs on
    the differential-tested replay kernel (:func:`_score_rows`) instead.
    """
    try:
        if game == "rbp":
            return run_rbp_schedule(dag, r, moves, variant=variant).io_cost
        return run_prbp_schedule(dag, r, moves, variant=variant).io_cost
    except PebblingError:
        return None


def _score_rows(
    dag: ComputationalDAG,
    r: int,
    rows: Sequence[Row],
    variant: GameVariant,
    game: str,
) -> Optional[int]:
    """Kernel score of a candidate row list — the refiner's hot path.

    Same contract as :func:`_replay_cost` (None when the candidate is
    illegal *or* incomplete), without per-move Move-object dispatch; the
    equivalence is pinned down by ``tests/test_schedule_ir.py``.
    """
    return replay_io_cost(dag, r, variant, game, rows)


def _io_count_rows(rows: Sequence[Row]) -> int:
    return sum(1 for op, _, _ in rows if op <= OP_SAVE)


def _make_schedule(
    template: Schedule, moves: List[Move], description: str
) -> Schedule:
    if isinstance(template, RBPSchedule):
        return RBPSchedule(
            template.dag, template.r, moves, variant=template.variant, description=description
        )
    return PRBPSchedule(
        template.dag, template.r, moves, variant=template.variant, description=description
    )


# --------------------------------------------------------------------------- #
# operator 1: I/O elision
# --------------------------------------------------------------------------- #


def _later_load_positions(rows: Sequence[Row], n: int) -> List[List[int]]:
    """Per node, the ascending move indices at which it is loaded."""
    loads: List[List[int]] = [[] for _ in range(n)]
    for i, (op, x, _) in enumerate(rows):
        if op == OP_LOAD:
            loads[x].append(i)
    return loads


def _rbp_elision_candidates(
    dag: ComputationalDAG, r: int, rows: Sequence[Row], variant: GameVariant
) -> List[Tuple[int, ...]]:
    """Index tuples whose removal is *plausibly* free I/O (replay decides).

    ``rows`` is always the current best schedule — legal and complete — so
    the pebble state is tracked with unchecked inline transitions instead of
    a full engine walk (every query reads the state *before* its own move,
    exactly as the engine-walk version did).
    """
    candidates: List[Tuple[int, ...]] = []
    loads = _later_load_positions(rows, dag.n)
    red: Set[int] = set()
    blue: Set[int] = set(dag.sources)
    is_sink = dag.is_sink
    allow_delete = variant.allow_delete
    pending_delete: Dict[int, int] = {}
    for i, (op, v, s) in enumerate(rows):
        if op == OP_LOAD:
            if v in red:
                candidates.append((i,))
            elif v in pending_delete:
                # delete ... load round trip: the value could have stayed red
                candidates.append((pending_delete.pop(v), i))
            red.add(v)
        elif op == OP_SAVE:
            if v in blue:
                candidates.append((i,))
            elif not is_sink(v) and not any(p > i for p in loads[v]):
                candidates.append((i,))
            blue.add(v)
            if not allow_delete:
                red.discard(v)
        elif op == OP_DELETE:
            pending_delete[v] = i
            red.discard(v)
        elif op == OP_COMPUTE:
            # a (re-)compute rewrites the value; the earlier delete no longer
            # pairs with a later load of the same content
            pending_delete.pop(v, None)
            if s >= 0:
                pending_delete.pop(s, None)
                red.discard(s)
            red.add(v)
    return candidates


# PRBP node states, as in ``core.pebbles.PRBPState`` (ints for the hot scan)
_P_NONE, _P_BLUE, _P_LIGHT, _P_DARK = 0, 1, 2, 3


def _prbp_elision_candidates(
    dag: ComputationalDAG, r: int, rows: Sequence[Row], variant: GameVariant
) -> List[Tuple[int, ...]]:
    candidates: List[Tuple[int, ...]] = []
    loads = _later_load_positions(rows, dag.n)
    state = [_P_NONE] * dag.n
    for v in dag.sources:
        state[v] = _P_BLUE
    is_sink = dag.is_sink
    pending_delete: Dict[int, int] = {}
    for i, (op, x, y) in enumerate(rows):
        if op == OP_LOAD:
            if state[x] == _P_LIGHT:
                candidates.append((i,))
            elif x in pending_delete:
                candidates.append((pending_delete.pop(x), i))
            if state[x] == _P_BLUE:
                state[x] = _P_LIGHT
        elif op == OP_SAVE:
            if not is_sink(x) and not any(p > i for p in loads[x]):
                candidates.append((i,))
            state[x] = _P_LIGHT
        elif op == OP_DELETE:
            if state[x] == _P_LIGHT:
                pending_delete[x] = i
                state[x] = _P_BLUE
            else:
                pending_delete.pop(x, None)
                state[x] = _P_NONE
        elif op == OP_COMPUTE:
            # the head's value changes, so an earlier delete of it no longer
            # pairs with a later load of the same content
            pending_delete.pop(y, None)
            state[y] = _P_DARK
        elif op == OP_CLEAR:
            pending_delete.pop(x, None)
            state[x] = _P_NONE
    return candidates


def _candidate_signature(
    rows: Sequence[Row], cand: Tuple[int, ...]
) -> Tuple[Tuple[Row, int], ...]:
    """Position-independent identity of a candidate: its rows + occurrence ranks.

    Candidate indices shift after every successful removal; the signature
    survives the shift, so a candidate that failed once (e.g. a round trip
    whose removal would overflow capacity) is not retried on every sweep —
    failed retries would otherwise silently drain the step budget.  Rows are
    a bijective image of Move objects (:func:`encode_moves`), so the dedup
    classes are exactly the pre-kernel ones.
    """
    counts: Dict[Row, int] = {}
    occ: Dict[int, Tuple[Row, int]] = {}
    wanted = set(cand)
    for idx, row in enumerate(rows):
        if idx in wanted:
            occ[idx] = (row, counts.get(row, 0))
        counts[row] = counts.get(row, 0) + 1
    return tuple(occ[idx] for idx in cand)


def _elision_pass(
    dag: ComputationalDAG,
    r: int,
    rows: List[Row],
    cost: int,
    variant: GameVariant,
    game: str,
    budget: _Budget,
    on_accept: Callable[[List[Row], int], None],
) -> Tuple[List[Row], int]:
    """Repeatedly remove free I/O until a fixed point (or budget exhaustion)."""
    find = _rbp_elision_candidates if game == "rbp" else _prbp_elision_candidates
    attempted: Set[Tuple[Tuple[Row, int], ...]] = set()
    for _ in range(_MAX_ELISION_SWEEPS):
        improved = False
        for cand in find(dag, r, rows, variant):
            sig = _candidate_signature(rows, cand)
            if sig in attempted:
                continue
            if not budget.spend():
                return rows, cost
            attempted.add(sig)
            drop = set(cand)
            trial = [row for idx, row in enumerate(rows) if idx not in drop]
            trial_cost = _score_rows(dag, r, trial, variant, game)
            if trial_cost is not None and trial_cost < cost:
                rows, cost = trial, trial_cost
                on_accept(rows, cost)
                improved = True
                break  # indices shifted; re-derive candidates
        if not improved:
            return rows, cost
    return rows, cost


# --------------------------------------------------------------------------- #
# operator 2/3: realized-order extraction, Belady rebuild, order perturbation
# --------------------------------------------------------------------------- #


def _realized_order(dag: ComputationalDAG, rows: Sequence[Row], game: str) -> List[int]:
    """The node processing order the schedule actually followed.

    For RBP this is the order of first computes; for PRBP the order in which
    nodes became fully computed.  Sources are interleaved immediately before
    their first use, which preserves the locality the Belady rebuild sees.
    The result is always a topological permutation of all nodes (stragglers
    — possible only in exotic variants — are appended in DAG order).
    """
    order: List[int] = []
    placed: Set[int] = set()

    def place(v: int) -> None:
        if v not in placed:
            placed.add(v)
            order.append(v)

    if game == "rbp":
        for op, v, _ in rows:
            if op == OP_COMPUTE and v not in placed:
                for u in dag.predecessors(v):
                    if dag.is_source(u):
                        place(u)
                place(v)
    else:
        marked_in = [0] * dag.n
        for op, x, y in rows:
            if op == OP_COMPUTE:
                if dag.is_source(x):
                    place(x)
                marked_in[y] += 1
                if marked_in[y] == dag.in_degree(y):
                    place(y)
            elif op == OP_CLEAR:
                marked_in[x] = 0
    for v in dag.topological_order:
        place(v)
    return order


def _rebuild(
    dag: ComputationalDAG,
    r: int,
    order: Sequence[int],
    variant: GameVariant,
    game: str,
) -> Optional[Tuple[List[Row], int]]:
    """Greedy Belady pebbling along ``order``; None when the rebuild is infeasible.

    Rebuilt schedules are legal by construction (they are produced through
    the engine), so their cost is just the I/O move count — no extra replay.
    """
    try:
        if game == "rbp":
            schedule: Schedule = greedy_rbp_schedule(dag, r, topo_order=order, variant=variant)
        else:
            schedule = topological_prbp_schedule(dag, r, topo_order=order, variant=variant)
    except (PebblingError, ValueError):
        # SolverError (infeasible r), IllegalMoveError (variant forbids the
        # builder's delete moves), ValueError (non-topological order after a
        # clear-variant extraction): all mean "no candidate from this order".
        return None
    rows = encode_moves(game, schedule.moves)
    return rows, _io_count_rows(rows)


def _perturb_order(
    dag: ComputationalDAG, order: Sequence[int], rng: random.Random
) -> Optional[List[int]]:
    """Move one node to a random other position inside its mobility window."""
    n = len(order)
    pos = {v: i for i, v in enumerate(order)}
    for _ in range(8):
        v = order[rng.randrange(n)]
        lo = max((pos[u] for u in dag.predecessors(v)), default=-1) + 1
        hi = min((pos[w] for w in dag.successors(v)), default=n) - 1
        if hi <= lo:
            continue
        target = rng.randint(lo, hi)
        if target == pos[v]:
            continue
        new_order = list(order)
        new_order.pop(pos[v])
        # after removal every predecessor keeps its index and every successor
        # shifts one slot left, so [lo, hi] is exactly the legal insertion range
        new_order.insert(target, v)
        return new_order
    return None


def _displace_move(rows: Sequence[Row], rng: random.Random) -> Optional[List[Row]]:
    """Slide one move to a nearby position (window reordering mutation)."""
    n = len(rows)
    if n < 2:
        return None
    i = rng.randrange(n)
    offset = rng.randint(-_REORDER_WINDOW, _REORDER_WINDOW)
    j = max(0, min(n - 1, i + offset))
    if i == j:
        return None
    new_rows = list(rows)
    row = new_rows.pop(i)
    new_rows.insert(j, row)
    return new_rows


# --------------------------------------------------------------------------- #
# the refinement driver
# --------------------------------------------------------------------------- #


def refine_schedule(
    schedule: Schedule,
    *,
    steps: Optional[int] = None,
    time_budget_s: Optional[float] = None,
    seed: int = 0,
    origin: str = "input",
    on_improve: Optional[Callable[[int, float], None]] = None,
) -> Tuple[Schedule, RefinementTrajectory]:
    """Refine a legal schedule under a step and/or wall-clock budget.

    Parameters
    ----------
    schedule:
        A *valid* :class:`RBPSchedule` or :class:`PRBPSchedule`; it is
        replayed once up front and an illegal input raises immediately.
    steps:
        Mutation-attempt budget.  ``None`` means
        :data:`DEFAULT_REFINE_STEPS`, unless a wall-clock budget is given
        (then the clock alone bounds the search).  ``0`` disables every
        operator and returns the input unchanged (with a trajectory).
    time_budget_s:
        Optional wall-clock ceiling in seconds.  Results produced under a
        wall-clock budget are machine-dependent and must not be cached.
    seed:
        Seed for the randomized operators; fixing ``(steps, seed)`` makes
        the result bit-identical across runs and processes.
    origin:
        Provenance label recorded in the trajectory (a solver name).
    on_improve:
        Optional anytime-progress hook called as ``on_improve(cost,
        elapsed_s)`` — once with the seed schedule's cost before the search
        starts, then on every *accepted* mutation (costs are strictly
        decreasing after the first call).  The hook does not influence the
        search; an exception it raises propagates to the caller.

    Returns
    -------
    (schedule, trajectory):
        The refined schedule — never costlier than the input — and the
        :class:`RefinementTrajectory` describing the run.
    """
    global _LAST_TRAJECTORY
    game = _game_of(schedule)
    dag, r, variant = schedule.dag, schedule.r, schedule.variant

    initial_cost = _replay_cost(dag, r, schedule.moves, variant, game)
    if initial_cost is None:
        raise SolverError(
            "refine_schedule() requires a legal, complete input schedule; "
            f"the given {game.upper()} schedule does not replay"
        )

    if time_budget_s is None and steps is None:
        steps = DEFAULT_REFINE_STEPS
    budget = _Budget(steps, time_budget_s)
    rng = random.Random(seed)

    # the search runs entirely on (op, node, arg) rows scored by the replay
    # kernel; Move objects only reappear for the returned schedule
    best_rows: List[Row] = encode_moves(game, schedule.moves)
    best_cost = initial_cost
    accepted = 0
    time_to_best = 0.0

    def on_accept(rows: List[Row], cost: int) -> None:
        nonlocal best_rows, best_cost, accepted, time_to_best
        best_rows, best_cost = rows, cost
        accepted += 1
        time_to_best = budget.elapsed()
        if on_improve is not None:
            on_improve(cost, time_to_best)

    if on_improve is not None:
        on_improve(initial_cost, 0.0)

    # deterministic phase 1: strip free I/O from the seed itself
    best_rows, best_cost = _elision_pass(
        dag, r, best_rows, best_cost, variant, game, budget, on_accept
    )

    # deterministic phase 2: eviction re-decision against the realized future
    if budget.spend():
        rebuilt = _rebuild(dag, r, _realized_order(dag, best_rows, game), variant, game)
        if rebuilt is not None and rebuilt[1] < best_cost:
            on_accept(*rebuilt)
            best_rows, best_cost = _elision_pass(
                dag, r, best_rows, best_cost, variant, game, budget, on_accept
            )

    # randomized phase: order perturbations and window reorderings
    while budget.spend():
        if rng.random() < 0.6:
            order = _perturb_order(dag, _realized_order(dag, best_rows, game), rng)
            candidate = None if order is None else _rebuild(dag, r, order, variant, game)
            if candidate is not None and candidate[1] < best_cost:
                on_accept(*candidate)
                best_rows, best_cost = _elision_pass(
                    dag, r, best_rows, best_cost, variant, game, budget, on_accept
                )
        else:
            reordered = _displace_move(best_rows, rng)
            if reordered is None:
                continue
            cost = _score_rows(dag, r, reordered, variant, game)
            if cost is None:
                continue
            # reordering alone never changes the I/O count — its value is the
            # round trips it exposes to the elision peephole
            trial_rows, trial_cost = _elision_pass(
                dag, r, reordered, cost, variant, game, budget, lambda m, c: None
            )
            if trial_cost < best_cost:
                on_accept(trial_rows, trial_cost)

    description = schedule.description
    if best_cost < initial_cost:
        description = f"anytime refinement of {origin} (seed={seed})"
    refined = _make_schedule(schedule, decode_moves(game, best_rows), description)
    trajectory = RefinementTrajectory(
        initial_cost=initial_cost,
        refined_cost=best_cost,
        steps=budget.steps,
        accepted=accepted,
        time_to_best_s=time_to_best,
        wall_time_s=budget.elapsed(),
        seed=seed,
        seed_solver=origin,
    )
    _LAST_TRAJECTORY = trajectory
    return refined, trajectory


# --------------------------------------------------------------------------- #
# beam-search constructor
# --------------------------------------------------------------------------- #


def _beam_successor_moves(
    game_state: Union[RBPGame, PRBPGame], branch: int, rng: random.Random
) -> List[Move]:
    """The most promising legal moves of a configuration, at most ``branch``.

    Computes (free progress) come first, then saves, deletes and loads; ties
    inside a priority class are broken by the seeded RNG so distinct beam
    runs explore distinct orderings deterministically.
    """
    buckets: Dict[int, List[Move]] = {0: [], 1: [], 2: [], 3: []}
    priority = {
        MoveKind.COMPUTE: 0,
        MoveKind.SAVE: 1,
        MoveKind.DELETE: 2,
        MoveKind.CLEAR: 2,
        MoveKind.LOAD: 3,
    }
    for mv in game_state.legal_moves():
        buckets[priority[mv.kind]].append(mv)
    picked: List[Move] = []
    for p in (0, 1, 2, 3):
        bucket = buckets[p]
        rng.shuffle(bucket)
        picked.extend(bucket)
        if len(picked) >= branch:
            break
    return picked[:branch]


def _config_key(game_state: Union[RBPGame, PRBPGame]) -> Tuple:
    if isinstance(game_state, RBPGame):
        return (
            frozenset(game_state.red),
            frozenset(game_state.blue),
            frozenset(game_state.computed),
        )
    return (tuple(game_state.state), tuple(game_state.marked))


def beam_construct(
    dag: ComputationalDAG,
    r: int,
    game: str,
    variant: GameVariant,
    *,
    upper_bound: int,
    width: int = 6,
    branch: int = 6,
    max_expansions: int = 2000,
    seed: int = 0,
) -> Optional[Schedule]:
    """Beam search over game configurations, pruned by a known upper bound.

    The beam keeps at most ``width`` configurations per depth (deduplicated
    by configuration, cheapest-first by ``io_cost`` plus the number of sinks
    still lacking a blue pebble — an admissible completion estimate).  Any
    state whose cost floor reaches ``upper_bound`` is dropped, so the
    constructor can only ever return a schedule *strictly cheaper* than the
    greedy/structured seed it was given; it returns ``None`` when the budget
    runs out first.
    """
    if upper_bound <= 0:
        return None
    rng = random.Random(seed)
    try:
        start: Union[RBPGame, PRBPGame] = (
            RBPGame(dag, r, variant=variant)
            if game == "rbp"
            else PRBPGame(dag, r, variant=variant)
        )
    except ValueError:
        return None

    def floor(state: Union[RBPGame, PRBPGame]) -> int:
        missing_sinks = sum(
            1
            for v in dag.sinks
            if (v not in state.blue if game == "rbp" else not state.node_state(v).has_blue)
        )
        return state.io_cost + missing_sinks

    beam: List[Union[RBPGame, PRBPGame]] = [start]
    best: Optional[Schedule] = None
    best_cost = upper_bound
    expansions = 0
    depth_limit = 4 * (dag.n + dag.m) + 8
    for _ in range(depth_limit):
        scored: Dict[Tuple, Union[RBPGame, PRBPGame]] = {}
        for state in beam:
            for mv in _beam_successor_moves(state, branch, rng):
                expansions += 1
                succ = state.copy()
                try:
                    succ.apply(mv)
                except PebblingError:  # pragma: no cover — legal_moves is exact
                    continue
                if floor(succ) >= best_cost:
                    continue
                if succ.is_terminal():
                    assert succ.history is not None
                    moves = list(succ.history)
                    best_cost = succ.io_cost
                    best = (
                        RBPSchedule(dag, r, moves, variant=variant, description="beam search")
                        if game == "rbp"
                        else PRBPSchedule(
                            dag, r, moves, variant=variant, description="beam search"
                        )
                    )
                    continue
                key = _config_key(succ)
                kept = scored.get(key)
                if kept is None or succ.io_cost < kept.io_cost:
                    scored[key] = succ
            if expansions >= max_expansions:
                return best
        if not scored:
            break
        beam = sorted(scored.values(), key=floor)[:width]
    return best
