"""repro — reproduction of *The Impact of Partial Computations on the Red-Blue Pebble Game*.

The package implements the classic red-blue pebble game (RBP) of Hong and
Kung, the partial-computing extension (PRBP) introduced by Papp, Sobczyk and
Yzelman (SPAA 2025), the DAG families and gadgets used throughout the paper,
exact and structured pebbling strategies, and the S-partition based
lower-bound machinery the paper adapts to PRBP.

Quick start
-----------
The unified facade in :mod:`repro.api` is the canonical entry point: pose a
:class:`PebblingProblem`, call :func:`solve`, and the auto-dispatch portfolio
picks an exhaustive optimum, a family-matched structured strategy, or the
greedy fallback:

>>> from repro import PebblingProblem, figure1_gadget, solve
>>> dag = figure1_gadget()
>>> solve(PebblingProblem(dag, r=4, game="rbp")).cost
3
>>> solve(PebblingProblem(dag, r=4, game="prbp")).cost
2

The per-solver free functions remain available for direct use:

>>> from repro import optimal_rbp_cost, optimal_prbp_cost
>>> optimal_rbp_cost(dag, r=4), optimal_prbp_cost(dag, r=4)
(3, 2)

Sub-packages
------------
``repro.api``
    The unified facade: :class:`PebblingProblem`, :func:`solve`, the solver
    registry (:func:`register_solver`, :func:`list_solvers`) and
    :class:`SolveResult`.
``repro.core``
    DAG substrate, both game engines, schedules, variants.
``repro.dags``
    Generators for every DAG family used in the paper.
``repro.solvers``
    Exhaustive optimal solvers, structured strategies, greedy baselines.
``repro.bounds``
    Dominators, S-/S-edge-/S-dominator partitions, analytic lower bounds.
``repro.hardness``
    The NP-hardness reduction constructions of Theorems 4.8 and 7.1.
``repro.analysis``
    Comparison harnesses and sweep/report helpers used by examples and
    benchmarks.
"""

from .api import (
    PebblingProblem,
    SolveResult,
    Solver,
    SolverInfo,
    best_lower_bound,
    get_solver,
    list_solvers,
    register_solver,
    solve,
)
from .core import (
    ComputationalDAG,
    DAGFamily,
    GameVariant,
    PebblingError,
    SolverError,
    MoveKind,
    ONE_SHOT,
    PRBPGame,
    PRBPMove,
    PRBPSchedule,
    PRBPState,
    RBPGame,
    RBPMove,
    RBPSchedule,
    RECOMPUTE,
    SLIDING,
    NO_DELETE,
    convert_rbp_to_prbp,
    is_valid_prbp_schedule,
    is_valid_rbp_schedule,
    prbp,
    prbp_schedule_cost,
    rbp,
    rbp_schedule_cost,
    run_prbp_schedule,
    run_rbp_schedule,
)
from .dags import (
    attention_dag,
    binary_tree_dag,
    chained_gadget_dag,
    fanin_groups_dag,
    fft_dag,
    figure1_gadget,
    kary_tree_dag,
    matmul_dag,
    matvec_dag,
    pebble_collection_gadget,
    pyramid_dag,
    random_layered_dag,
    zipper_gadget,
)
from .solvers import (
    optimal_prbp_cost,
    optimal_prbp_schedule,
    optimal_rbp_cost,
    optimal_rbp_schedule,
    topological_prbp_schedule,
)

__version__ = "1.0.0"

__all__ = [
    # api facade
    "PebblingProblem",
    "SolveResult",
    "Solver",
    "SolverInfo",
    "solve",
    "register_solver",
    "get_solver",
    "list_solvers",
    "best_lower_bound",
    # core
    "ComputationalDAG",
    "DAGFamily",
    "GameVariant",
    "PebblingError",
    "SolverError",
    "MoveKind",
    "ONE_SHOT",
    "RECOMPUTE",
    "SLIDING",
    "NO_DELETE",
    "PRBPGame",
    "PRBPMove",
    "PRBPSchedule",
    "PRBPState",
    "RBPGame",
    "RBPMove",
    "RBPSchedule",
    "convert_rbp_to_prbp",
    "is_valid_prbp_schedule",
    "is_valid_rbp_schedule",
    "prbp",
    "prbp_schedule_cost",
    "rbp",
    "rbp_schedule_cost",
    "run_prbp_schedule",
    "run_rbp_schedule",
    # dags
    "attention_dag",
    "binary_tree_dag",
    "chained_gadget_dag",
    "fanin_groups_dag",
    "fft_dag",
    "figure1_gadget",
    "kary_tree_dag",
    "matmul_dag",
    "matvec_dag",
    "pebble_collection_gadget",
    "pyramid_dag",
    "random_layered_dag",
    "zipper_gadget",
    # solvers
    "optimal_prbp_cost",
    "optimal_prbp_schedule",
    "optimal_rbp_cost",
    "optimal_rbp_schedule",
    "topological_prbp_schedule",
    "__version__",
]
