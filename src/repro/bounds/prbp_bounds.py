"""PRBP lower bounds from the adapted partition concepts (Theorems 6.5 and 6.7).

The classic S-partition bound does *not* carry over to PRBP (Lemma 5.4 — see
:mod:`repro.dags.fanin` and experiment E07); the two adapted tools do:

* Theorem 6.5 (S-edge partitions):   ``OPT_PRBP >= r * (MIN_edge(2r) - 1)``
* Theorem 6.7 (S-dominator partitions): ``OPT_PRBP >= r * (MIN_dom(2r) - 1)``

As for the RBP bound, each is exposed in exact form (small DAGs) and in a
generic form taking an externally derived lower bound on the partition size.
"""

from __future__ import annotations

from ..core.dag import ComputationalDAG
from .minpart import (
    EXACT_SEARCH_NODE_LIMIT,
    min_dominator_partition_classes,
    min_edge_partition_classes,
)

__all__ = [
    "prbp_lower_bound_from_min_edge",
    "prbp_lower_bound_from_min_dom",
    "prbp_edge_lower_bound_exact",
    "prbp_dominator_lower_bound_exact",
]


def prbp_lower_bound_from_min_edge(r: int, min_edge_2r: int) -> int:
    """Theorem 6.5: ``r * (MIN_edge(2r) - 1)`` given a (lower bound on) ``MIN_edge(2r)``."""
    return max(0, r * (min_edge_2r - 1))


def prbp_lower_bound_from_min_dom(r: int, min_dom_2r: int) -> int:
    """Theorem 6.7: ``r * (MIN_dom(2r) - 1)`` given a (lower bound on) ``MIN_dom(2r)``."""
    return max(0, r * (min_dom_2r - 1))


def prbp_edge_lower_bound_exact(
    dag: ComputationalDAG, r: int, max_edges: int = EXACT_SEARCH_NODE_LIMIT
) -> int:
    """Exact Theorem 6.5 lower bound on ``OPT_PRBP`` for a small DAG."""
    k = min_edge_partition_classes(dag, 2 * r, max_edges=max_edges)
    return prbp_lower_bound_from_min_edge(r, k)


def prbp_dominator_lower_bound_exact(
    dag: ComputationalDAG, r: int, max_nodes: int = EXACT_SEARCH_NODE_LIMIT
) -> int:
    """Exact Theorem 6.7 lower bound on ``OPT_PRBP`` for a small DAG."""
    k = min_dominator_partition_classes(dag, 2 * r, max_nodes=max_nodes)
    return prbp_lower_bound_from_min_dom(r, k)
