"""Dominator and terminal sets (Definitions 5.1, 5.2, 6.1, 6.2).

These are the building blocks of every partition-based lower bound in the
paper:

* a **dominator** for a node set ``V0`` is a node set ``D`` hit by every
  directed path from a source into ``V0`` (Definition 5.1);
* the **terminal set** of ``V0`` contains the nodes of ``V0`` with no
  out-neighbour inside ``V0`` (Definition 5.2);
* an **edge-dominator** for an edge set ``E0`` is a node set hit by every
  source path that contains an edge of ``E0`` — equivalently a dominator for
  the tails ``Start(E0)`` (Definition 6.1);
* the **edge-terminal set** of ``E0`` contains the nodes with an in-edge in
  ``E0`` but no out-edge in ``E0`` (Definition 6.2).

Besides the predicate checks used by the partition verifiers, this module
computes the *minimum* dominator size exactly via a unit-vertex-capacity
max-flow (Menger's theorem), which is what the exact ``MIN_part`` /
``MIN_dom`` / ``MIN_edge`` searches in :mod:`repro.bounds.minpart` need.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Set

from ..core.dag import ComputationalDAG, Edge

__all__ = [
    "is_dominator",
    "terminal_set",
    "edge_start_set",
    "is_edge_dominator",
    "edge_terminal_set",
    "minimum_dominator_size",
    "minimum_edge_dominator_size",
]


def is_dominator(dag: ComputationalDAG, dominator: Iterable[int], targets: Iterable[int]) -> bool:
    """True iff every directed path from a source to a node of ``targets`` meets ``dominator``.

    A target that is itself in the dominator is trivially covered; a *source*
    target outside the dominator is **not** covered (the empty path from it to
    itself avoids the dominator), matching Definition 5.1.
    """
    dom = set(dominator)
    target_set = set(targets)
    if not target_set - dom:
        return True
    # BFS from the sources through G - dom; if we can reach a target the
    # corresponding path avoids the dominator.
    reachable: Set[int] = set()
    stack = [s for s in dag.sources if s not in dom]
    while stack:
        v = stack.pop()
        if v in reachable:
            continue
        reachable.add(v)
        if v in target_set:
            return False
        for w in dag.successors(v):
            if w not in dom and w not in reachable:
                stack.append(w)
    return True


def terminal_set(dag: ComputationalDAG, nodes: Iterable[int]) -> FrozenSet[int]:
    """The terminal set of ``nodes``: members with no out-neighbour inside ``nodes``."""
    node_set = set(nodes)
    return frozenset(
        v for v in node_set if not any(w in node_set for w in dag.successors(v))
    )


def edge_start_set(edges: Iterable[Edge]) -> FrozenSet[int]:
    """``Start(E0)``: the tails of the edges in ``E0``."""
    return frozenset(u for u, _ in edges)


def is_edge_dominator(
    dag: ComputationalDAG, dominator: Iterable[int], edges: Iterable[Edge]
) -> bool:
    """True iff ``dominator`` is an edge-dominator for ``edges`` (Definition 6.1).

    Uses the equivalence noted in the paper: ``D`` edge-dominates ``E0`` iff
    ``D`` dominates ``Start(E0)``.
    """
    return is_dominator(dag, dominator, edge_start_set(edges))


def edge_terminal_set(dag: ComputationalDAG, edges: Iterable[Edge]) -> FrozenSet[int]:
    """The edge-terminal set of ``edges`` (Definition 6.2)."""
    edge_set = set(edges)
    heads = {v for _, v in edge_set}
    return frozenset(
        v for v in heads if not any((v, w) in edge_set for w in dag.successors(v))
    )


def _min_vertex_cut_to_targets(dag: ComputationalDAG, targets: Sequence[int]) -> int:
    """Minimum number of nodes whose removal cuts every source → ``targets`` path.

    Nodes of ``targets`` (and sources) may themselves be part of the cut.
    Computed by Menger's theorem: split every node ``v`` into ``v_in → v_out``
    with capacity 1, keep original edges at infinite capacity, attach a super
    source to every source's ``v_in`` and every target's ``v_out`` to a super
    sink, and take the max flow.
    """
    target_set = set(targets)
    if not target_set:
        return 0
    import networkx as nx

    graph = nx.DiGraph()
    inf = float("inf")
    s_node, t_node = "S", "T"
    for v in dag.nodes():
        graph.add_edge(("in", v), ("out", v), capacity=1)
    for u, v in dag.edges:
        graph.add_edge(("out", u), ("in", v), capacity=inf)
    for s in dag.sources:
        graph.add_edge(s_node, ("in", s), capacity=inf)
    for t in target_set:
        graph.add_edge(("out", t), t_node, capacity=inf)
    if s_node not in graph or t_node not in graph:
        return 0
    value, _ = nx.maximum_flow(graph, s_node, t_node)
    return int(value)


def minimum_dominator_size(dag: ComputationalDAG, targets: Iterable[int]) -> int:
    """Size of a minimum dominator for ``targets`` (exact, via max-flow).

    Every target must lie on some path from a source (always true in a DAG
    without isolated nodes, because following in-edges from any node reaches
    a source), so the minimum is finite and at most ``len(targets)``.
    """
    return _min_vertex_cut_to_targets(dag, list(set(targets)))


def minimum_edge_dominator_size(dag: ComputationalDAG, edges: Iterable[Edge]) -> int:
    """Size of a minimum edge-dominator for ``edges`` (exact, via max-flow)."""
    return minimum_dominator_size(dag, edge_start_set(edges))
