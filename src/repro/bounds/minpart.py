"""Minimum S-partitions: exact search on small DAGs and greedy upper bounds.

The Hong–Kung style lower bounds need *lower* bounds on ``MIN_part(S)`` /
``MIN_dom(S)`` / ``MIN_edge(S)`` — for the structured DAG families these come
from the counting arguments in :mod:`repro.bounds.analytic`.  This module
complements them with two generic tools:

* **exact minimisation** on small DAGs (:func:`min_spartition_classes`,
  :func:`min_dominator_partition_classes`, :func:`min_edge_partition_classes`)
  — condition (i) of the definitions forces the prefix unions of any valid
  partition to be predecessor-closed sets (*downsets*), so the minimum number
  of classes is a shortest path in the lattice of downsets, which we search
  with a breadth-first scan and a monotone dominator-size prune;
* **greedy construction** (:func:`greedy_spartition`, ...) — a valid
  partition built by scanning a topological order and closing the current
  class as soon as the next node would violate a condition.  Greedy results
  are *upper* bounds on the minimum and are mainly used to sandwich the exact
  value in tests and to report achievable partitions in the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.dag import ComputationalDAG, Edge
from ..core.exceptions import SolverError
from .dominators import (
    edge_terminal_set,
    minimum_dominator_size,
    minimum_edge_dominator_size,
    terminal_set,
)
from .partitions import SDominatorPartition, SEdgePartition, SPartition

__all__ = [
    "min_spartition_classes",
    "min_dominator_partition_classes",
    "min_edge_partition_classes",
    "greedy_spartition",
    "greedy_dominator_partition",
    "greedy_edge_partition",
    "EXACT_SEARCH_NODE_LIMIT",
]

#: Exact partition search is refused above this node (or edge) count.
EXACT_SEARCH_NODE_LIMIT = 16


def _min_classes_over_downsets(
    n_items: int,
    closure_preds: Sequence[Sequence[int]],
    class_is_valid,
    max_items: int,
    item_order: Optional[Sequence[int]] = None,
) -> int:
    """Shortest chain of downsets ``∅ = I_0 ⊂ I_1 ⊂ ... ⊂ I_k = all`` with valid increments.

    ``closure_preds[i]`` lists the items that must already be covered before
    item ``i`` may be added (predecessor closure).  ``class_is_valid(W)``
    returns a pair ``(valid, prunable)``; ``prunable=True`` asserts that no
    superset of ``W`` can be valid (sound for the monotone dominator-size
    condition, never asserted for the non-monotone terminal condition).

    ``item_order`` must list the items in a prerequisite-respecting order
    (prerequisites before dependents).  The class-enumeration DFS walks the
    remaining items in that order, so every prerequisite-closed candidate
    class is reachable by adding items left to right.
    """
    if n_items == 0:
        return 0
    if n_items > max_items:
        raise SolverError(
            f"exact partition search supports at most {max_items} items, got {n_items}"
        )
    order = list(item_order) if item_order is not None else list(range(n_items))
    if sorted(order) != list(range(n_items)):
        raise ValueError("item_order must be a permutation of the items")
    full = frozenset(range(n_items))
    dist: Dict[FrozenSet[int], int] = {frozenset(): 0}
    queue = deque([frozenset()])
    while queue:
        ideal = queue.popleft()
        d = dist[ideal]
        if ideal == full:
            return d
        remaining = [i for i in order if i not in ideal]

        found_classes: List[FrozenSet[int]] = []

        def extend(current: Set[int], start_idx: int) -> None:
            if current:
                valid, prunable = class_is_valid(frozenset(current))
                if not valid and prunable:
                    return
                if valid:
                    found_classes.append(frozenset(current))
            for pos in range(start_idx, len(remaining)):
                item = remaining[pos]
                if all((p in ideal or p in current) for p in closure_preds[item]):
                    current.add(item)
                    extend(current, pos + 1)
                    current.remove(item)

        extend(set(), 0)
        for cls in found_classes:
            new_ideal = frozenset(ideal | cls)
            if new_ideal not in dist:
                dist[new_ideal] = d + 1
                queue.append(new_ideal)
    raise SolverError("no valid partition exists (this should be impossible for S >= 1)")


def min_dominator_partition_classes(
    dag: ComputationalDAG, s: int, max_nodes: int = EXACT_SEARCH_NODE_LIMIT
) -> int:
    """Exact ``MIN_dom(S)``: the minimum number of classes of any S-dominator partition."""
    preds = [list(dag.predecessors(v)) for v in dag.nodes()]

    def valid(cls: FrozenSet[int]) -> Tuple[bool, bool]:
        ok = minimum_dominator_size(dag, cls) <= s
        # dominator size is monotone in the class, so an invalid class can
        # never become valid by adding more nodes -> prunable
        return ok, not ok

    return _min_classes_over_downsets(
        dag.n, preds, valid, max_nodes, item_order=dag.topological_order
    )


def min_spartition_classes(
    dag: ComputationalDAG, s: int, max_nodes: int = EXACT_SEARCH_NODE_LIMIT
) -> int:
    """Exact ``MIN_part(S)``: the minimum number of classes of any S-partition."""
    preds = [list(dag.predecessors(v)) for v in dag.nodes()]

    def valid(cls: FrozenSet[int]) -> Tuple[bool, bool]:
        dom_ok = minimum_dominator_size(dag, cls) <= s
        if not dom_ok:
            return False, True  # prunable: dominators only grow
        term_ok = len(terminal_set(dag, cls)) <= s
        # terminal sets are not monotone, so a terminal violation must not prune
        return term_ok, False

    return _min_classes_over_downsets(
        dag.n, preds, valid, max_nodes, item_order=dag.topological_order
    )


def min_edge_partition_classes(
    dag: ComputationalDAG, s: int, max_edges: int = EXACT_SEARCH_NODE_LIMIT
) -> int:
    """Exact ``MIN_edge(S)``: the minimum number of classes of any S-edge partition."""
    # prerequisite of edge (u, v): every in-edge of u
    prereqs: List[List[int]] = []
    for (u, v) in dag.edges:
        prereqs.append([dag.edge_id(p, u) for p in dag.predecessors(u)])

    def valid(cls: FrozenSet[int]) -> Tuple[bool, bool]:
        edges = [dag.edges[e] for e in cls]
        dom_ok = minimum_edge_dominator_size(dag, edges) <= s
        if not dom_ok:
            return False, True
        term_ok = len(edge_terminal_set(dag, edges)) <= s
        return term_ok, False

    # order the edge items so that prerequisites (in-edges of the tail) come first
    pos = dag.topological_position()
    edge_order = sorted(range(dag.m), key=lambda e: (pos[dag.edges[e][1]], pos[dag.edges[e][0]]))
    return _min_classes_over_downsets(dag.m, prereqs, valid, max_edges, item_order=edge_order)


# --------------------------------------------------------------------------- #
# greedy constructions (upper bounds on the minima)
# --------------------------------------------------------------------------- #


def greedy_dominator_partition(dag: ComputationalDAG, s: int) -> SDominatorPartition:
    """Greedy S-dominator partition built along a topological order."""
    classes: List[List[int]] = []
    current: List[int] = []
    for v in dag.topological_order:
        candidate = current + [v]
        if minimum_dominator_size(dag, candidate) <= s:
            current = candidate
        else:
            if not current:
                raise SolverError(f"S = {s} is too small: node {v} alone has no dominator of size {s}")
            classes.append(current)
            current = [v]
            if minimum_dominator_size(dag, current) > s:
                raise SolverError(f"S = {s} is too small: node {v} alone has no dominator of size {s}")
    if current:
        classes.append(current)
    partition = SDominatorPartition(dag=dag, s=s, classes=classes)
    partition.verify()
    return partition


def greedy_spartition(dag: ComputationalDAG, s: int) -> SPartition:
    """Greedy S-partition built along a topological order."""
    classes: List[List[int]] = []
    current: List[int] = []

    def feasible(cls: List[int]) -> bool:
        return (
            minimum_dominator_size(dag, cls) <= s
            and len(terminal_set(dag, cls)) <= s
        )

    for v in dag.topological_order:
        candidate = current + [v]
        if feasible(candidate):
            current = candidate
        else:
            if not current:
                raise SolverError(f"S = {s} is too small for a singleton class of node {v}")
            classes.append(current)
            current = [v]
            if not feasible(current):
                raise SolverError(f"S = {s} is too small for a singleton class of node {v}")
    if current:
        classes.append(current)
    partition = SPartition(dag=dag, s=s, classes=classes)
    partition.verify()
    return partition


def greedy_edge_partition(dag: ComputationalDAG, s: int) -> SEdgePartition:
    """Greedy S-edge partition built along a topological order of the edges."""
    # order edges by (topological position of head, then tail)
    pos = dag.topological_position()
    ordered_edges = sorted(dag.edges, key=lambda e: (pos[e[1]], pos[e[0]]))
    classes: List[List[Edge]] = []
    current: List[Edge] = []

    def feasible(cls: List[Edge]) -> bool:
        return (
            minimum_edge_dominator_size(dag, cls) <= s
            and len(edge_terminal_set(dag, cls)) <= s
        )

    for e in ordered_edges:
        candidate = current + [e]
        if feasible(candidate):
            current = candidate
        else:
            if not current:
                raise SolverError(f"S = {s} is too small for a singleton edge class of {e}")
            classes.append(current)
            current = [e]
            if not feasible(current):
                raise SolverError(f"S = {s} is too small for a singleton edge class of {e}")
    if current:
        classes.append(current)
    partition = SEdgePartition(dag=dag, s=s, classes=classes)
    partition.verify()
    return partition
