"""Closed-form lower bounds and cost formulas for the paper's concrete computations.

These functions implement the counting arguments of Sections 4 and 6 with the
explicit constants that the proofs yield.  Asymptotic statements in the paper
("``Ω(m log m / log r)``") are returned as the concrete expression derived in
the corresponding proof, so that the benchmarks can compare an achievable
strategy's measured cost against an actual number; the docstrings spell out
which constant is used.

Contents
--------
* Proposition 4.3 — matrix–vector multiplication: exact ``OPT_PRBP`` and the
  RBP lower bound ``m² + 3m - 1``.
* Proposition 4.7 — chained gadget: RBP lower bound linear in the number of
  copies, PRBP cost 2.
* Lemma 5.4 — fan-in DAG: lower bound on ``MIN_part(S)`` (the quantity that
  *fails* to bound PRBP).
* Theorem 6.9 — FFT: ``MIN_dom`` counting bound and the resulting PRBP bound.
* Theorem 6.10 — matrix multiplication: ``MIN_edge`` counting bound and the
  resulting PRBP bound.
* Theorem 6.11 — attention: the two-regime bound.
* Appendix A.2 — k-ary trees (re-exported from :mod:`repro.dags.trees`).
"""

from __future__ import annotations

import math

from ..dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost

__all__ = [
    "matvec_prbp_optimal_cost",
    "matvec_rbp_lower_bound",
    "chained_gadget_rbp_lower_bound",
    "chained_gadget_prbp_optimal_cost",
    "fanin_min_part_lower_bound",
    "fft_min_dom_lower_bound",
    "fft_prbp_lower_bound",
    "matmul_min_edge_lower_bound",
    "matmul_prbp_lower_bound",
    "attention_prbp_lower_bound",
    "zipper_rbp_cost_estimate",
    "zipper_prbp_cost_estimate",
    "collection_io_lower_bound_without_full_pebbles",
    "optimal_prbp_tree_cost",
    "optimal_rbp_tree_cost",
]


# --------------------------------------------------------------------------- #
# Proposition 4.3 — matrix–vector multiplication
# --------------------------------------------------------------------------- #


def matvec_prbp_optimal_cost(m: int) -> int:
    """``OPT_PRBP = m² + 2m`` for the ``m × m`` matrix–vector DAG with ``m + 3 <= r``.

    This is the trivial cost (``m² + m`` sources, ``m`` sinks), achieved by
    the column-streaming strategy of Proposition 4.3.
    """
    return m * m + 2 * m


def matvec_rbp_lower_bound(m: int) -> int:
    """Proposition 4.3's RBP lower bound ``m² + 3m - 1`` for ``m + 3 <= r <= 2m``.

    One non-trivial I/O step occurs between any two consecutively computed
    output entries, adding ``m - 1`` to the trivial cost.
    """
    return m * m + 3 * m - 1


# --------------------------------------------------------------------------- #
# Proposition 4.7 — chained Figure-1 gadgets
# --------------------------------------------------------------------------- #


def chained_gadget_prbp_optimal_cost() -> int:
    """``OPT_PRBP = 2`` for the Proposition 4.7 chain, independent of its length."""
    return 2


def chained_gadget_rbp_lower_bound(copies: int) -> int:
    """Proposition 4.7's RBP lower bound at ``r = 4``: one I/O per gadget copy plus the trivial 2."""
    return copies + 2


# --------------------------------------------------------------------------- #
# Lemma 5.4 — fan-in construction
# --------------------------------------------------------------------------- #


def fanin_min_part_lower_bound(num_groups: int, group_size: int, s: int) -> int:
    """Lower bound on ``MIN_part(S)`` for the Figure 3 DAG when ``num_groups > S``.

    At least one group ``H_i`` is disjoint from the sink's class (otherwise no
    dominator of size ``S`` exists for it), and every node of that group then
    lies in the terminal set of its own class, so at least
    ``ceil(group_size / S)`` additional classes are needed.
    """
    if num_groups <= s:
        return 1
    return 1 + math.ceil(group_size / s)


# --------------------------------------------------------------------------- #
# Theorem 6.9 — FFT
# --------------------------------------------------------------------------- #


def fft_min_dom_lower_bound(m: int, s: int) -> int:
    """The [13] counting bound ``MIN_dom(S) >= m·log2(m) / (S·log2(S))`` (for ``S >= 2``).

    Hong & Kung show that any set of ``S`` nodes dominates at most
    ``S · log2(S)`` butterfly nodes' worth of "progress", so at least
    ``m·log2(m) / (S·log2(S))`` classes are required.
    """
    if s < 2:
        raise ValueError("S must be at least 2")
    return max(1, math.ceil(m * math.log2(m) / (s * math.log2(s))))


def fft_prbp_lower_bound(m: int, r: int) -> int:
    """Theorem 6.9: ``OPT_PRBP >= r · (MIN_dom(2r) - 1)`` with the counting bound above."""
    return max(0, r * (fft_min_dom_lower_bound(m, 2 * r) - 1))


# --------------------------------------------------------------------------- #
# Theorem 6.10 — matrix multiplication
# --------------------------------------------------------------------------- #


def matmul_min_edge_lower_bound(m1: int, m2: int, m3: int, s: int) -> int:
    """Theorem 6.10's counting bound ``MIN_edge(S) >= m1·m2·m3 / (2·√2·S^{3/2} + S)``.

    An edge class has at most ``S`` source nodes in its edge-dominator and at
    most ``S`` sinks in its edge-terminal set; by the Loomis–Whitney argument
    of [13] those cover at most ``2·√2·S^{3/2}`` internal (product) nodes, and
    the at most ``S`` internal nodes of the edge-dominator cover one internal
    edge each.
    """
    per_class = 2.0 * math.sqrt(2.0) * s ** 1.5 + s
    return max(1, math.ceil(m1 * m2 * m3 / per_class))


def matmul_prbp_lower_bound(m1: int, m2: int, m3: int, r: int) -> int:
    """Theorem 6.10: ``OPT_PRBP >= r · (MIN_edge(2r) - 1)`` with the counting bound above."""
    return max(0, r * (matmul_min_edge_lower_bound(m1, m2, m3, 2 * r) - 1))


# --------------------------------------------------------------------------- #
# Theorem 6.11 — attention
# --------------------------------------------------------------------------- #


def attention_prbp_lower_bound(m: int, d: int, r: int) -> int:
    """Theorem 6.11: ``OPT_PRBP >= Ω(min(m²·d/√r, m²·d²/r))`` with the proof's constants.

    In the small-cache regime (``r <= d²``) the bound reduces to matrix
    multiplication with dimensions ``m × d × m``.  In the large-cache regime
    every ``(2r)``-edge-partition class contains at most
    ``4·(2r)·d + 4·(2r)²/d`` internal edges (4r trees touched by the
    dominator/terminal sets plus the extra trees), giving
    ``MIN_edge(2r) >= m²·d / (8rd + 16r²/d)`` and the bound
    ``r · (MIN_edge(2r) - 1)``.
    """
    if r <= d * d:
        return matmul_prbp_lower_bound(m, d, m, r)
    s = 2 * r
    per_class = 2.0 * s * d + (s * s) / d
    min_edge = max(1, math.ceil(m * m * d / per_class))
    return max(0, r * (min_edge - 1))


# --------------------------------------------------------------------------- #
# Proposition 4.4 / 4.6 — zipper and pebble collection gadgets
# --------------------------------------------------------------------------- #


def zipper_rbp_cost_estimate(d: int, length: int) -> int:
    """RBP cost of the alternating-group strategy at ``r = d + 2``: ``d`` loads per chain node + 1 save."""
    return d * length + 1


def zipper_prbp_cost_estimate(d: int, length: int) -> int:
    """PRBP cost of the Proposition 4.4 two-phase strategy at ``r = d + 2``.

    ``2d`` source loads, one save + one load for (roughly) every second chain
    node, and the final sink save; exact value matches the validated
    :func:`repro.solvers.structured.zipper_prbp_schedule`.
    """
    evens = (length + 1) // 2  # chain nodes pre-aggregated (and saved) in phase 1
    return 2 * d + 2 * evens + (1 if length > 1 else 0)


def collection_io_lower_bound_without_full_pebbles(d: int, length: int) -> int:
    """Proposition 4.6: a PRBP strategy never holding ``d + 2`` pebbles on the gadget costs ``>= length / (2d)``."""
    return math.ceil(length / (2 * d))
