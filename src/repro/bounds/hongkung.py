"""Hong & Kung's RBP lower bound from S-partitions (Section 5.1).

If ``MIN_part(S)`` denotes the minimum number of classes of any S-partition
of a DAG, then for every capacity ``r``::

    OPT_RBP  >=  r * (MIN_part(2r) - 1)

This module exposes the bound both in its exact form (using the exact
``MIN_part`` search of :mod:`repro.bounds.minpart`, feasible for small DAGs)
and in a generic form taking a caller-supplied lower bound on ``MIN_part``
(used with the analytic counting bounds of :mod:`repro.bounds.analytic`).
"""

from __future__ import annotations

from ..core.dag import ComputationalDAG
from .minpart import EXACT_SEARCH_NODE_LIMIT, min_spartition_classes

__all__ = ["rbp_lower_bound_from_min_part", "rbp_lower_bound_exact"]


def rbp_lower_bound_from_min_part(r: int, min_part_2r: int) -> int:
    """``r * (MIN_part(2r) - 1)`` given a (lower bound on) ``MIN_part(2r)``."""
    return max(0, r * (min_part_2r - 1))


def rbp_lower_bound_exact(
    dag: ComputationalDAG, r: int, max_nodes: int = EXACT_SEARCH_NODE_LIMIT
) -> int:
    """Exact Hong–Kung lower bound on ``OPT_RBP`` for a small DAG.

    Computes ``MIN_part(2r)`` exactly and returns ``r * (MIN_part(2r) - 1)``.
    Note that the trivial cost (number of sources plus sinks) is an
    independent lower bound; callers usually report
    ``max(trivial, hong_kung)``.
    """
    k = min_spartition_classes(dag, 2 * r, max_nodes=max_nodes)
    return rbp_lower_bound_from_min_part(r, k)
