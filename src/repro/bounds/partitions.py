"""S-partitions, S-dominator partitions and S-edge partitions (Sections 5 and 6).

Three partition concepts are implemented as verified value objects:

* :class:`SPartition` — Hong & Kung's Definition 5.3 (node classes, ordering
  + dominator + terminal conditions);
* :class:`SDominatorPartition` — Definition 6.6 (terminal condition dropped);
* :class:`SEdgePartition` — Definition 6.3 (edge classes, edge-dominator and
  edge-terminal conditions).

Each class has a ``verify`` method that checks its definition exactly (using
the max-flow dominator computation), raising
:class:`~repro.core.exceptions.PartitionError` with the violated condition.

The module also implements the *constructive* halves of the paper's lemmas —
the maps from pebbling strategies to partitions:

* :func:`spartition_from_rbp_schedule` — Hong & Kung's original argument:
  an RBP strategy of cost ``C`` with capacity ``r`` yields a ``2r``-partition
  into ``ceil(C / r)`` classes.
* :func:`edge_partition_from_prbp_schedule` — Lemma 6.4 for PRBP.
* :func:`dominator_partition_from_prbp_schedule` — Lemma 6.8 for PRBP.

These converters are exercised heavily by the property-based tests: for
random DAGs and arbitrary valid strategies, the extracted partitions must
always verify — which is exactly the content of the lemmas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from ..core.dag import ComputationalDAG, Edge
from ..core.exceptions import PartitionError
from ..core.moves import MoveKind
from ..core.prbp import PRBPGame
from ..core.rbp import RBPGame
from ..core.strategy import PRBPSchedule, RBPSchedule
from .dominators import (
    edge_terminal_set,
    minimum_dominator_size,
    minimum_edge_dominator_size,
    terminal_set,
)

__all__ = [
    "SPartition",
    "SDominatorPartition",
    "SEdgePartition",
    "spartition_from_rbp_schedule",
    "edge_partition_from_prbp_schedule",
    "dominator_partition_from_prbp_schedule",
]


def _check_node_cover(dag: ComputationalDAG, classes: Sequence[Sequence[int]]) -> None:
    seen: Set[int] = set()
    for cls in classes:
        for v in cls:
            if v in seen:
                raise PartitionError(f"node {v} appears in more than one class")
            if not (0 <= v < dag.n):
                raise PartitionError(f"node {v} is not a node of the DAG")
            seen.add(v)
    if len(seen) != dag.n:
        missing = sorted(set(range(dag.n)) - seen)
        raise PartitionError(f"classes do not cover all nodes; missing: {missing[:10]}")


def _check_node_ordering(dag: ComputationalDAG, classes: Sequence[Sequence[int]]) -> None:
    index = {}
    for i, cls in enumerate(classes):
        for v in cls:
            index[v] = i
    for u, v in dag.edges:
        if index[u] > index[v]:
            raise PartitionError(
                f"cyclic dependency between classes: edge ({u}, {v}) goes from class "
                f"{index[u]} back to class {index[v]}"
            )


@dataclass
class SDominatorPartition:
    """An S-dominator partition (Definition 6.6): ordered node classes with small dominators."""

    dag: ComputationalDAG
    s: int
    classes: List[List[int]]

    def verify(self) -> None:
        """Check the definition exactly; raise :class:`PartitionError` on any violation."""
        _check_node_cover(self.dag, self.classes)
        _check_node_ordering(self.dag, self.classes)
        for i, cls in enumerate(self.classes):
            dom = minimum_dominator_size(self.dag, cls)
            if dom > self.s:
                raise PartitionError(
                    f"class {i} has minimum dominator size {dom} > S = {self.s}"
                )

    def __len__(self) -> int:
        return len(self.classes)


@dataclass
class SPartition(SDominatorPartition):
    """A full S-partition (Definition 5.3): additionally the terminal sets are small."""

    def verify(self) -> None:
        super().verify()
        for i, cls in enumerate(self.classes):
            term = terminal_set(self.dag, cls)
            if len(term) > self.s:
                raise PartitionError(
                    f"class {i} has terminal set of size {len(term)} > S = {self.s}"
                )


@dataclass
class SEdgePartition:
    """An S-edge partition (Definition 6.3): ordered edge classes with small edge-dominators/terminals."""

    dag: ComputationalDAG
    s: int
    classes: List[List[Edge]]

    def verify(self) -> None:
        """Check the definition exactly; raise :class:`PartitionError` on any violation."""
        seen: Set[Edge] = set()
        for cls in self.classes:
            for e in cls:
                if e in seen:
                    raise PartitionError(f"edge {e} appears in more than one class")
                if not self.dag.has_edge(*e):
                    raise PartitionError(f"{e} is not an edge of the DAG")
                seen.add(e)
        if len(seen) != self.dag.m:
            raise PartitionError(
                f"classes cover {len(seen)} edges but the DAG has {self.dag.m}"
            )
        # condition (i): for (u, v) and (v, w), the class of (v, w) is not earlier
        index = {}
        for i, cls in enumerate(self.classes):
            for e in cls:
                index[e] = i
        for u, v in self.dag.edges:
            for w in self.dag.successors(v):
                if index[(v, w)] < index[(u, v)]:
                    raise PartitionError(
                        f"ordering violated: edge ({v}, {w}) is in class {index[(v, w)]} but its "
                        f"prerequisite ({u}, {v}) is in the later class {index[(u, v)]}"
                    )
        for i, cls in enumerate(self.classes):
            dom = minimum_edge_dominator_size(self.dag, cls)
            if dom > self.s:
                raise PartitionError(
                    f"edge class {i} has minimum edge-dominator size {dom} > S = {self.s}"
                )
            term = edge_terminal_set(self.dag, cls)
            if len(term) > self.s:
                raise PartitionError(
                    f"edge class {i} has edge-terminal set of size {len(term)} > S = {self.s}"
                )

    def __len__(self) -> int:
        return len(self.classes)


# --------------------------------------------------------------------------- #
# strategy → partition extraction
# --------------------------------------------------------------------------- #


def _subsequence_index(moves, r: int) -> List[int]:
    """For every move position, the index of the r-I/O subsequence it belongs to.

    Subsequence ``i`` (0-based) ends with the ``(i+1)·r``-th I/O operation;
    trailing non-I/O moves are folded into the last subsequence, as in the
    proofs of Lemma 6.4 / 6.8.
    """
    idx: List[int] = []
    io_seen = 0
    for mv in moves:
        idx.append(io_seen // r)
        if mv.is_io:
            io_seen += 1
    if not idx:
        return idx
    last = max(0, (io_seen - 1) // r) if io_seen else 0
    return [min(i, last) for i in idx]


def spartition_from_rbp_schedule(schedule: RBPSchedule) -> SPartition:
    """Hong & Kung's extraction: a ``2r``-partition from a valid one-shot RBP schedule.

    Every node is assigned to the subsequence in which it *first receives a
    red pebble* (sources: their first load; computed nodes: their compute
    step).  The resulting partition has at most ``ceil(C / r)`` classes for a
    schedule of I/O cost ``C``.
    """
    dag, r = schedule.dag, schedule.r
    sub_of = _subsequence_index(schedule.moves, r)
    n_subs = (max(sub_of) + 1) if sub_of else 1
    first_red: dict = {}
    game = RBPGame(dag, r, variant=schedule.variant, record_history=False)
    for pos, mv in enumerate(schedule.moves):
        game.apply(mv)
        if mv.kind in (MoveKind.LOAD, MoveKind.COMPUTE) and mv.node not in first_red:
            first_red[mv.node] = sub_of[pos]
    game.assert_terminal()
    classes: List[List[int]] = [[] for _ in range(n_subs)]
    for v in dag.nodes():
        if v in first_red:
            classes[first_red[v]].append(v)
        else:
            # a source that is never loaded (e.g. never needed); Hong & Kung
            # place it into the first class, where it is its own dominator
            classes[0].append(v)
    classes = [cls for cls in classes if cls]
    return SPartition(dag=dag, s=2 * r, classes=classes)


def edge_partition_from_prbp_schedule(schedule: PRBPSchedule) -> SEdgePartition:
    """Lemma 6.4: a ``2r``-edge partition extracted from a valid PRBP schedule.

    Every edge is assigned to the subsequence in which its (unique, one-shot)
    partial compute step happens.
    """
    dag, r = schedule.dag, schedule.r
    sub_of = _subsequence_index(schedule.moves, r)
    n_subs = (max(sub_of) + 1) if sub_of else 1
    classes: List[List[Edge]] = [[] for _ in range(n_subs)]
    game = PRBPGame(dag, r, variant=schedule.variant, record_history=False)
    for pos, mv in enumerate(schedule.moves):
        game.apply(mv)
        if mv.kind is MoveKind.COMPUTE:
            assert mv.edge is not None
            classes[sub_of[pos]].append(mv.edge)
    game.assert_terminal()
    classes = [cls for cls in classes if cls]
    return SEdgePartition(dag=dag, s=2 * r, classes=classes)


def dominator_partition_from_prbp_schedule(schedule: PRBPSchedule) -> SDominatorPartition:
    """Lemma 6.8: a ``2r``-dominator partition extracted from a valid PRBP schedule.

    Every non-source node is assigned to the subsequence containing the *last*
    partial compute step on one of its in-edges; every source is assigned to
    the subsequence of its first load.
    """
    dag, r = schedule.dag, schedule.r
    sub_of = _subsequence_index(schedule.moves, r)
    n_subs = (max(sub_of) + 1) if sub_of else 1
    last_compute: dict = {}
    first_load: dict = {}
    game = PRBPGame(dag, r, variant=schedule.variant, record_history=False)
    for pos, mv in enumerate(schedule.moves):
        game.apply(mv)
        if mv.kind is MoveKind.COMPUTE:
            assert mv.edge is not None
            last_compute[mv.edge[1]] = sub_of[pos]
        elif mv.kind is MoveKind.LOAD and mv.node not in first_load:
            first_load[mv.node] = sub_of[pos]
    game.assert_terminal()
    classes: List[List[int]] = [[] for _ in range(n_subs)]
    for v in dag.nodes():
        if dag.is_source(v):
            classes[first_load.get(v, 0)].append(v)
        else:
            classes[last_compute[v]].append(v)
    classes = [cls for cls in classes if cls]
    return SDominatorPartition(dag=dag, s=2 * r, classes=classes)
