""":func:`solve_many` — batch solving with caching and process fan-out.

The sweeps, comparisons and the benchmark runner all reduce to "solve this
list of problems"; this module gives them one entry point that

1. computes a content digest per problem (:func:`~repro.api.cache.problem_digest`),
2. answers what it can from a :class:`~repro.api.cache.ResultCache`,
3. dedupes identical misses inside the batch,
4. fans the remaining misses out over a ``ProcessPoolExecutor`` when
   ``jobs > 1`` — with per-task timeouts and a graceful fallback to serial
   execution when worker processes cannot be used — and
5. returns results in input order, each the exact object a serial
   ``solve()`` loop would have produced.

Determinism is a contract, not an accident: every solver in the library is
deterministic, results are collected by input index, and the cache digest
covers everything a solver can observe, so ``solve_many(problems)`` ==
``[solve(p) for p in problems]`` (up to wall-clock timing in
``solve_stats``) with or without caching and parallelism.  The test suite
asserts exactly that.

Workers inherit the solver registry by module import, so custom solvers
registered at import time are available in children; solvers registered
dynamically after interpreter start are visible only under the ``fork``
start method (the Linux default).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.exceptions import SolverError
from .cache import ResultCache, cacheable_options, problem_digest
from .dispatch import AUTO_EXACT_NODE_LIMIT, solve
from .problem import PebblingProblem
from .result import SolveResult

__all__ = ["solve_many", "solve_many_detailed", "BatchInfo"]

#: One slot of the output list: a result, or the :class:`SolverError` the
#: problem raised (only with ``return_exceptions=True``).
Outcome = Union[SolveResult, SolverError]


@dataclass
class BatchInfo:
    """What :func:`solve_many_detailed` did for each input problem."""

    #: Per-problem: answered from the cache (False for every problem when no
    #: cache was passed).
    cache_hits: List[bool] = field(default_factory=list)
    #: Per-problem content digest (always computed — it also drives in-batch
    #: dedup of identical problems).
    digests: List[Optional[str]] = field(default_factory=list)
    #: True iff at least one miss was solved in a worker process.
    used_processes: bool = False
    #: Why the process pool was abandoned, if it was requested but unusable.
    fallback_reason: Optional[str] = None


def _solve_repeated(
    problem: PebblingProblem,
    solver: str,
    options: Mapping[str, object],
    repeats: int,
) -> SolveResult:
    """``solve()`` run ``repeats`` times; the fastest run is returned.

    Results are deterministic across repeats, so only the timing differs —
    this mirrors the benchmark runner's min-of-N policy.
    """
    best: Optional[SolveResult] = None
    for _ in range(max(1, repeats)):
        result = solve(problem, solver=solver, **dict(options))
        if best is None or best.solve_stats is None:
            best = result
        elif (
            result.solve_stats is not None
            and result.solve_stats.wall_time_s < best.solve_stats.wall_time_s
        ):
            best = result
    return best


def _worker(payload: Tuple[PebblingProblem, str, Dict[str, object], int]):
    """Process-pool task: returns ``("ok", result)`` or ``("solver_error", exc)``.

    Only :class:`SolverError` travels back as data (it is an expected
    per-problem outcome); any other exception propagates through the future
    and is handled — re-raised or retried serially — by the parent.
    """
    problem, solver, options, repeats = payload
    try:
        return ("ok", _solve_repeated(problem, solver, options, repeats))
    except SolverError as exc:
        return ("solver_error", exc)


def _snapshot_workers(executor: ProcessPoolExecutor) -> List[object]:
    """The executor's worker processes, captured *before* shutdown clears them.

    Reaches into ``_processes``; guarded so a stdlib layout change degrades
    to the old keep-running behaviour instead of crashing.
    """
    try:
        return list((getattr(executor, "_processes", None) or {}).values())
    except Exception:  # pragma: no cover — defensive against stdlib internals
        return []


def _terminate_workers(workers: List[object]) -> None:
    """Kill worker processes still chewing on timed-out tasks.

    ``Future.cancel()`` cannot stop a *running* task, and concurrent.futures
    registers an atexit hook that joins workers — without this, a timed-out
    hour-long solve would keep the interpreter alive for the full hour after
    ``solve_many`` returned.  Every still-running task at this point has
    already been reported as timed out (finished tasks' results were
    collected before shutdown), so killing the processes loses nothing.
    """
    for process in workers:
        try:
            process.terminate()
        except Exception:  # pragma: no cover — already-dead workers etc.
            pass


def _normalise_solvers(solver: Union[str, Sequence[str]], count: int) -> List[str]:
    if isinstance(solver, str):
        return [solver] * count
    solvers = list(solver)
    if len(solvers) != count:
        raise ValueError(
            f"got {len(solvers)} solver names for {count} problems; "
            "pass one name, or exactly one per problem"
        )
    return solvers


def _normalise_options(
    base: Mapping[str, object],
    per_problem: Optional[Sequence[Mapping[str, object]]],
    count: int,
) -> List[Dict[str, object]]:
    if per_problem is None:
        return [dict(base) for _ in range(count)]
    merged = [dict(base, **dict(extra)) for extra in per_problem]
    if len(merged) != count:
        raise ValueError(f"got {len(merged)} per-problem option maps for {count} problems")
    return merged


def solve_many_detailed(
    problems: Sequence[PebblingProblem],
    solver: Union[str, Sequence[str]] = "auto",
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    budget: Optional[int] = None,
    seed: Optional[int] = None,
    exact_node_limit: int = AUTO_EXACT_NODE_LIMIT,
    timeout_s: Optional[float] = None,
    repeats: int = 1,
    return_exceptions: bool = False,
    per_problem_options: Optional[Sequence[Mapping[str, object]]] = None,
    **options: object,
) -> Tuple[List[Outcome], BatchInfo]:
    """:func:`solve_many` plus a :class:`BatchInfo` describing the run."""
    problems = list(problems)
    n = len(problems)
    solvers = _normalise_solvers(solver, n)
    if budget is not None:
        options = {**options, "budget": budget}
    if seed is not None:
        options = {**options, "seed": seed}
    if exact_node_limit != AUTO_EXACT_NODE_LIMIT:
        # only a non-default limit goes into the options (and the digest):
        # solve() behaves identically either way for the default, and keeping
        # the default implicit makes problem_digest(p) == the digest used here
        options = {**options, "exact_node_limit": exact_node_limit}
    all_options = _normalise_options(options, per_problem_options, n)
    # A solve under an active wall-clock budget is non-deterministic: its
    # digest deliberately omits the budget, so it must bypass the cache *and*
    # the in-batch dedup (two time-budgeted solves are not interchangeable).
    cacheable = [cacheable_options(all_options[i]) for i in range(n)]

    info = BatchInfo(cache_hits=[False] * n, digests=[None] * n)
    outcomes: List[Optional[Outcome]] = [None] * n

    # 1. + 2. — digest everything (dedup needs digests even without a
    # cache), answer hits from the cache
    pending: List[int] = []
    for i, problem in enumerate(problems):
        digest = problem_digest(problem, solver=solvers[i], options=all_options[i])
        info.digests[i] = digest
        if cache is not None and cacheable[i]:
            hit = cache.get(problem, digest)
            if hit is not None:
                outcomes[i] = hit
                info.cache_hits[i] = True
                continue
        pending.append(i)

    # 3. — identical misses are solved once; equal digests imply equal outcomes
    representative: Dict[str, int] = {}
    duplicates: Dict[int, int] = {}
    unique_pending: List[int] = []
    for i in pending:
        digest = info.digests[i]
        if not cacheable[i]:
            unique_pending.append(i)
            continue
        if digest in representative:
            duplicates[i] = representative[digest]
            continue
        representative[digest] = i
        unique_pending.append(i)

    # 4. — solve the misses, in workers when asked and possible.  A single
    # miss normally runs in-process, but a requested timeout still needs a
    # worker (a serial solve cannot be pre-empted).
    remaining = list(unique_pending)
    use_pool = jobs is not None and jobs > 1 and (
        len(remaining) > 1 or (timeout_s is not None and len(remaining) == 1)
    )
    if use_pool:
        executor: Optional[ProcessPoolExecutor] = None
        timed_out = False
        try:
            executor = ProcessPoolExecutor(max_workers=min(jobs, len(remaining)))
            futures = {
                i: executor.submit(_worker, (problems[i], solvers[i], all_options[i], repeats))
                for i in remaining
            }
            still_serial: List[int] = []
            for i in remaining:
                try:
                    tag, value = futures[i].result(timeout=timeout_s)
                    outcomes[i] = value
                    info.used_processes = True
                except FutureTimeoutError:
                    futures[i].cancel()
                    timed_out = True
                    outcomes[i] = SolverError(
                        f"solve timed out after {timeout_s}s on {problems[i].describe()} "
                        "(the worker was terminated)"
                    )
                except Exception as exc:  # noqa: BLE001 — a broken pool, not a solver failure
                    # The pool died under this task (or could not run it at
                    # all); fall back to solving it in-process so a flaky
                    # environment degrades to serial throughput, not errors.
                    info.fallback_reason = f"{type(exc).__name__}: {exc}"
                    still_serial.append(i)
            remaining = still_serial
        except (OSError, RuntimeError, PermissionError) as exc:
            # Pool creation itself failed (sandboxed platform, missing
            # semaphores, spawn restrictions, ...): run everything serially.
            info.fallback_reason = f"{type(exc).__name__}: {exc}"
        finally:
            if executor is not None:
                workers = _snapshot_workers(executor) if timed_out else []
                executor.shutdown(wait=False, cancel_futures=True)
                _terminate_workers(workers)

    if remaining and timeout_s is not None and info.fallback_reason is not None:
        warnings.warn(
            f"solve_many: worker processes unavailable ({info.fallback_reason}); "
            f"{len(remaining)} problem(s) run serially and timeout_s={timeout_s} "
            "is not enforced on them",
            RuntimeWarning,
            stacklevel=3,
        )
    for i in remaining:
        try:
            outcomes[i] = _solve_repeated(problems[i], solvers[i], all_options[i], repeats)
        except SolverError as exc:
            outcomes[i] = exc

    # store fresh results, then mirror representatives onto their duplicates
    if cache is not None:
        for i in unique_pending:
            if isinstance(outcomes[i], SolveResult) and cacheable[i]:
                cache.put(info.digests[i], outcomes[i])
    for i, rep in duplicates.items():
        outcomes[i] = outcomes[rep]

    # 5. — input order is already guaranteed; surface errors per policy
    if not return_exceptions:
        for outcome in outcomes:
            if isinstance(outcome, SolverError):
                raise outcome
    return list(outcomes), info


def solve_many(
    problems: Sequence[PebblingProblem],
    solver: Union[str, Sequence[str]] = "auto",
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    budget: Optional[int] = None,
    seed: Optional[int] = None,
    exact_node_limit: int = AUTO_EXACT_NODE_LIMIT,
    timeout_s: Optional[float] = None,
    repeats: int = 1,
    return_exceptions: bool = False,
    per_problem_options: Optional[Sequence[Mapping[str, object]]] = None,
    **options: object,
) -> List[Outcome]:
    """Solve a batch of problems; results come back in input order.

    Parameters
    ----------
    problems:
        The instances to solve.
    solver:
        One registered solver name (or ``"auto"``) for the whole batch, or a
        sequence naming one solver per problem.
    jobs:
        Fan misses out over up to this many worker processes; ``None``/``1``
        solves serially in-process.  A pool that cannot be created or dies
        mid-run degrades to serial execution instead of failing the batch.
    cache:
        A :class:`~repro.api.cache.ResultCache`; hits skip solving entirely
        and fresh results are stored back.  ``None`` disables caching.
        Problems solved under an active wall-clock budget
        (``time_budget_s``) bypass the cache and the in-batch dedup — their
        results are machine-dependent, so neither sharing nor storing them
        is sound.
    budget, seed, exact_node_limit, options:
        Forwarded to every :func:`repro.api.solve` call (see there); ``seed``
        drives the anytime refinement engine, so a fixed seed keeps batch
        results bit-identical to a serial ``solve()`` loop.
    timeout_s:
        Per-task ceiling, enforced while collecting parallel results; a
        task over budget yields a :class:`SolverError` and its worker
        process is terminated once the batch has been collected.  Ignored
        in serial execution, where a running solver cannot be pre-empted.
    repeats:
        Timed ``solve()`` calls per miss (the fastest run is kept) — for
        benchmark use; results are identical across repeats.
    return_exceptions:
        When True, a problem failing with :class:`SolverError` contributes
        the exception object at its position instead of aborting the batch.
        Any other exception always propagates.
    per_problem_options:
        Optional sequence of option mappings merged over ``options`` for the
        corresponding problem (the benchmark runner's scenarios each carry
        their own solver options).
    """
    outcomes, _ = solve_many_detailed(
        problems,
        solver,
        jobs=jobs,
        cache=cache,
        budget=budget,
        seed=seed,
        exact_node_limit=exact_node_limit,
        timeout_s=timeout_s,
        repeats=repeats,
        return_exceptions=return_exceptions,
        per_problem_options=per_problem_options,
        **options,
    )
    return outcomes
