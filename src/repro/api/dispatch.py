""":func:`solve` — the single entry point for posing and solving problems.

``solve(problem)`` runs the auto-dispatch portfolio; ``solve(problem,
solver="fft-blocked")`` runs one registered solver by name.  Either way the
returned :class:`~repro.api.result.SolveResult` carries a schedule that has
been replayed through the engine, so the reported cost is the cost of an
actually legal pebbling.

The ``"auto"`` portfolio, in order:

1. **Exhaustive optimum** when the DAG is small enough
   (``n <= exact_node_limit``) and the search finishes within ``budget``
   expanded states.
2. **Family-matched structured strategy** when the DAG carries a
   :class:`~repro.core.dag.DAGFamily` tag that a registered solver names and
   the capacity satisfies the solver's minimum.  If the strategy's cost
   meets the best known lower bound it is returned immediately; otherwise,
   on DAGs of at most :data:`GREEDY_COMPARISON_NODE_LIMIT` nodes, the
   greedy fallback is also run and the cheaper of the two schedules wins
   (ties go to the structured strategy).  The paper's strategies are built
   for their critical capacity regime, and away from it — e.g. a reduction
   tree with far more than ``k + 1`` pebbles — plain greedy pebbling can
   genuinely beat them; beyond the node limit the structured result is
   returned without the comparison, since asymptotically the structured
   strategies dominate and the greedy replay would dominate solve time.
3. **Greedy fallback** (Belady-eviction topological processing) for
   everything else.

A step that raises :class:`~repro.core.exceptions.SolverError` falls through
to the next; if every step fails, :func:`solve` raises a ``SolverError``
whose message lists what was attempted and why each attempt failed.

Whatever heuristic schedule the portfolio settles on is handed to a final
**anytime refinement pass** (:mod:`repro.solvers.anytime`): a budgeted,
seeded local search that can only ever lower the achieved cost.  The pass is
skipped when the result is already provably optimal; its trajectory (initial
cost → refined cost, steps, time-to-best) is recorded on
``SolveResult.solve_stats.refinement``.  The knobs — ``seed`` (first-class
parameter), ``refine_steps``, ``time_budget_s`` and ``refine=False``
(solver options) — thread through :func:`solve` and
:func:`repro.api.solve_many` alike.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Tuple

from ..core.exceptions import SolverError
from ..obs.tracing import get_tracer
from ..solvers.anytime import last_refinement_trajectory, refine_schedule
from ..solvers.exhaustive import last_search_telemetry
from .bounds import best_lower_bound
from .problem import PebblingProblem
from .registry import SolverInfo, get_solver, list_solvers
from .result import Schedule, SolveAttempt, SolveResult, SolveStats

__all__ = [
    "solve",
    "AUTO_EXACT_NODE_LIMIT",
    "DEFAULT_AUTO_BUDGET",
    "GREEDY_COMPARISON_NODE_LIMIT",
]

#: Above this node count the auto portfolio does not attempt exhaustive search.
AUTO_EXACT_NODE_LIMIT = 14

#: Default state budget for the exhaustive step of the auto portfolio.
DEFAULT_AUTO_BUDGET = 500_000

#: Above this node count the portfolio returns a (non-provably-optimal)
#: structured result without also running the greedy comparison.  Greedy only
#: beats the paper's strategies in small boundary regimes (tiny ``r``, or a
#: capacity far above the critical one); asymptotically the structured
#: strategies win by construction, and on multi-thousand-node DAGs the
#: Belady-eviction replay would dominate the total solve time.
GREEDY_COMPARISON_NODE_LIMIT = 2_000


def _run(
    info: SolverInfo,
    problem: PebblingProblem,
    bound: Tuple[Optional[int], str],
    **options: object,
) -> SolveResult:
    """Run one solver and package its (validated) schedule into a result.

    ``bound`` is the problem's precomputed ``best_lower_bound`` pair — it
    depends only on the problem, so callers compute it once per solve rather
    than once per portfolio attempt.
    """
    telemetry_before = last_search_telemetry()
    trajectory_before = last_refinement_trajectory()
    start = time.perf_counter()
    schedule: Schedule = info.fn(problem, **options)
    stats = schedule.stats()  # replays through the engine; raises on an illegal schedule
    wall_time = time.perf_counter() - start
    telemetry = last_search_telemetry()
    if telemetry is telemetry_before:
        telemetry = None  # this solver never entered the A* search
    trajectory = last_refinement_trajectory()
    if trajectory is trajectory_before:
        trajectory = None  # this solver never entered the refinement engine
    return SolveResult(
        problem=problem,
        schedule=schedule,
        stats=stats,
        solver=info.name,
        exact_solver=info.exact,
        lower_bound=bound[0],
        lower_bound_source=bound[1],
        solve_stats=SolveStats(
            wall_time_s=wall_time,
            states_expanded=telemetry.expanded if telemetry else None,
            states_frontier_peak=telemetry.frontier_peak if telemetry else None,
            refinement=trajectory,
        ),
    )


def _apply_refinement(result: SolveResult, **options: object) -> SolveResult:
    """The auto portfolio's final improvement pass: budgeted anytime refinement.

    Cost-monotone by construction — the refined schedule replaces the
    original only when it is strictly cheaper; either way the trajectory is
    recorded on ``solve_stats``.  Skipped entirely when the result is
    already provably optimal, when ``refine=False`` is passed, or — unless a
    refinement knob was given explicitly — on DAGs above
    :data:`GREEDY_COMPARISON_NODE_LIMIT` nodes, where the replay-heavy
    search would dominate the solve time.
    """
    if not options.get("refine", True) or result.optimal:
        return result
    steps = options.get("refine_steps")
    time_budget_s = options.get("time_budget_s")
    explicit = steps is not None or time_budget_s is not None or "refine" in options
    if not explicit and result.problem.n > GREEDY_COMPARISON_NODE_LIMIT:
        return result
    seed = int(options.get("seed") or 0)
    on_progress = options.get("on_progress")

    start = time.perf_counter()
    refined, trajectory = refine_schedule(
        result.schedule,
        steps=None if steps is None else int(steps),
        time_budget_s=None if time_budget_s is None else float(time_budget_s),
        seed=seed,
        origin=result.solver,
        on_improve=on_progress if callable(on_progress) else None,
    )
    extra = time.perf_counter() - start

    old = result.solve_stats
    solve_stats = SolveStats(
        wall_time_s=(old.wall_time_s if old is not None else 0.0) + extra,
        states_expanded=old.states_expanded if old is not None else None,
        states_frontier_peak=old.states_frontier_peak if old is not None else None,
        refinement=trajectory,
    )
    if trajectory.refined_cost < trajectory.initial_cost:
        return replace(result, schedule=refined, stats=refined.stats(), solve_stats=solve_stats)
    return replace(result, solve_stats=solve_stats)


def _family_candidates(problem: PebblingProblem) -> List[SolverInfo]:
    """Registered structured solvers matching the problem's family tag, game and capacity."""
    fam = problem.family
    if fam is None:
        return []
    return [
        info
        for info in list_solvers(game=problem.game, family=fam.name)
        if info.families and info.supports(problem)
    ]


def _finalize_auto(
    result: SolveResult,
    timings: List[List[object]],
    started: float,
) -> SolveResult:
    """Stamp the total portfolio wall time and per-attempt breakdown.

    ``timings`` entries are mutable ``[solver, wall_s, outcome]`` triples;
    the entry whose solver produced the returned schedule is marked
    ``"won"`` and surviving ``"candidate"`` entries become ``"lost"``.
    """
    won = False
    for entry in timings:
        if entry[2] == "candidate" and entry[0] == result.solver and not won:
            entry[2] = "won"
            won = True
        elif entry[2] == "candidate":
            entry[2] = "lost"
    attempts = tuple(
        SolveAttempt(solver=str(s), wall_time_s=float(w), outcome=str(o))
        for s, w, o in timings
    )
    old = result.solve_stats
    solve_stats = SolveStats(
        wall_time_s=time.perf_counter() - started,
        states_expanded=old.states_expanded if old is not None else None,
        states_frontier_peak=old.states_frontier_peak if old is not None else None,
        refinement=old.refinement if old is not None else None,
        attempts=attempts,
    )
    return replace(result, solve_stats=solve_stats)


def _auto(
    problem: PebblingProblem,
    budget: Optional[int],
    exact_node_limit: int,
    **options: object,
) -> SolveResult:
    attempts: List[Tuple[str, str]] = []
    # [solver, wall_s, outcome] triples; "candidate" entries are resolved to
    # won/lost once the portfolio settles on a schedule.
    timings: List[List[object]] = []
    started = time.perf_counter()
    bound = best_lower_bound(problem)

    # 1. exhaustive optimum on small instances
    if problem.n <= exact_node_limit:
        info = get_solver("exhaustive")
        attempt_start = time.perf_counter()
        try:
            exact_budget = DEFAULT_AUTO_BUDGET if budget is None else budget
            result = _run(info, problem, bound, budget=exact_budget, **options)
            timings.append(["exhaustive", time.perf_counter() - attempt_start, "candidate"])
            return _finalize_auto(result, timings, started)
        except SolverError as exc:
            attempts.append(("exhaustive", str(exc)))
            timings.append(["exhaustive", time.perf_counter() - attempt_start, "failed"])
    else:
        attempts.append(
            ("exhaustive", f"skipped: n = {problem.n} > exact_node_limit = {exact_node_limit}")
        )
        timings.append(["exhaustive", 0.0, "skipped"])

    # 2. family-matched structured strategy
    structured_result: Optional[SolveResult] = None
    for info in _family_candidates(problem):
        attempt_start = time.perf_counter()
        try:
            structured_result = _run(info, problem, bound, **options)
            timings.append([info.name, time.perf_counter() - attempt_start, "candidate"])
            break
        except SolverError as exc:
            attempts.append((info.name, str(exc)))
            timings.append([info.name, time.perf_counter() - attempt_start, "failed"])
    if structured_result is not None and (
        structured_result.optimal or problem.n > GREEDY_COMPARISON_NODE_LIMIT
    ):
        return _finalize_auto(
            _apply_refinement(structured_result, **options), timings, started
        )

    # 3. greedy — the fallback, and the sanity comparison for a structured
    # strategy used away from its critical capacity regime
    attempt_start = time.perf_counter()
    try:
        greedy_result = _run(get_solver("greedy"), problem, bound, **options)
        timings.append(["greedy", time.perf_counter() - attempt_start, "candidate"])
    except SolverError as exc:
        attempts.append(("greedy", str(exc)))
        timings.append(["greedy", time.perf_counter() - attempt_start, "failed"])
        greedy_result = None

    # 4. whichever heuristic schedule won gets the anytime improvement pass
    if structured_result is not None and greedy_result is not None:
        chosen = (
            structured_result
            if structured_result.cost <= greedy_result.cost
            else greedy_result
        )
        return _finalize_auto(_apply_refinement(chosen, **options), timings, started)
    if structured_result is not None:
        return _finalize_auto(
            _apply_refinement(structured_result, **options), timings, started
        )
    if greedy_result is not None:
        return _finalize_auto(
            _apply_refinement(greedy_result, **options), timings, started
        )

    detail = "; ".join(f"{name}: {reason}" for name, reason in attempts)
    raise SolverError(f"no solver could handle {problem.describe()} — {detail}")


def solve(
    problem: PebblingProblem,
    solver: str = "auto",
    budget: Optional[int] = None,
    seed: Optional[int] = None,
    exact_node_limit: int = AUTO_EXACT_NODE_LIMIT,
    **options: object,
) -> SolveResult:
    """Solve a pebbling problem and return a validated :class:`SolveResult`.

    Parameters
    ----------
    problem:
        The instance (DAG + capacity + game + variant) to solve.
    solver:
        ``"auto"`` (default) runs the portfolio described in the module
        docstring; any other value must be a registered solver name
        (see :func:`repro.api.list_solvers`).
    budget:
        State budget for exhaustive search (expanded configurations).  For
        ``solver="auto"`` it caps step 1 and defaults to
        :data:`DEFAULT_AUTO_BUDGET` (500k, tuned so the portfolio stays
        responsive); for ``solver="exhaustive"`` it is the cap itself and
        ``None`` means the solver's own, larger default
        (:data:`~repro.solvers.exhaustive.DEFAULT_MAX_STATES`); for
        ``solver="anytime"`` it is the refinement step budget.
    seed:
        RNG seed for the anytime refinement engine (the auto portfolio's
        final improvement pass and the ``"anytime"`` solver).  ``None``
        means the default seed 0; a fixed ``(seed, refine_steps)`` pair
        makes refined schedules bit-identical across runs and processes.
        A seed alone does not force the pass — on DAGs above
        :data:`GREEDY_COMPARISON_NODE_LIMIT` nodes the auto pass is skipped
        unless ``refine_steps``/``time_budget_s``/``refine`` is given.
    exact_node_limit:
        Auto portfolio only: largest node count for which exhaustive search
        is attempted.
    options:
        Forwarded to the solver callable (solver-specific knobs).  The
        refinement pass reads ``refine_steps`` (mutation-attempt budget),
        ``time_budget_s`` (wall-clock ceiling — results under one are not
        cacheable) and ``refine=False`` (disable the pass).  ``on_progress``
        (a callable ``(cost, elapsed_s) -> None``) receives anytime-progress
        events from the refinement engine — the seed cost, then every
        accepted improvement; it never changes the returned result and is
        excluded from cache digests (:data:`repro.api.cache.EPHEMERAL_OPTIONS`).

    Raises
    ------
    SolverError
        If the named solver does not support the problem (wrong game, wrong
        family, ``r`` below the solver's minimum), or if every portfolio
        member fails.
    """
    tracer = get_tracer()
    with tracer.span(
        "solve",
        attrs={"solver": solver, "game": problem.game, "n": problem.n},
    ) as span:
        result = _solve_dispatch(
            problem,
            solver=solver,
            budget=budget,
            seed=seed,
            exact_node_limit=exact_node_limit,
            **options,
        )
        span.set_attr("solver_used", result.solver)
        span.set_attr("cost", result.cost)
        ctx = span.context
    _record_solve_telemetry(problem, solver, options, result, ctx.trace_id)
    return result


def _solve_dispatch(
    problem: PebblingProblem,
    solver: str,
    budget: Optional[int],
    seed: Optional[int],
    exact_node_limit: int,
    **options: object,
) -> SolveResult:
    if seed is not None:
        options = {**options, "seed": seed}
    if solver == "auto":
        return _auto(problem, budget, exact_node_limit, **options)

    info = get_solver(solver)
    if problem.game not in info.games:
        raise SolverError(
            f"solver {info.name!r} plays {'/'.join(info.games)}, not {problem.game!r}"
        )
    if info.families:
        fam = problem.family
        if fam is None or fam.name not in info.families:
            raise SolverError(
                f"solver {info.name!r} is restricted to the families "
                f"{'/'.join(info.families)}; the problem's DAG carries "
                f"{str(fam) if fam else 'no family tag'}"
            )
    required = info.required_r(problem)
    if required is not None and problem.r < required:
        raise SolverError(
            f"solver {info.name!r} needs r >= {required} on {problem.describe()}, "
            f"got r = {problem.r}"
        )
    if budget is not None:
        options = {**options, "budget": budget}
    return _run(info, problem, best_lower_bound(problem), **options)


#: Count of telemetry-recording failures (a diagnostic, not an error path:
#: recording must never take down a successful solve).
_telemetry_failures = 0

#: Option value types that are recorded verbatim in telemetry.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _record_solve_telemetry(
    problem: PebblingProblem,
    solver_requested: str,
    options: dict,
    result: SolveResult,
    trace_id: Optional[str],
) -> None:
    """Append one :class:`~repro.obs.telemetry.SolveTelemetry` record.

    This is the data ROADMAP item 5 (telemetry-driven portfolio) trains
    on: instance digest + features, requested/used solver, scalar options,
    cost, bound gap, wall time, states expanded, per-attempt portfolio
    timings.  Failures are counted, never raised.
    """
    global _telemetry_failures
    try:
        # Lazy imports: corpus.features pulls in repro.corpus, whose package
        # __init__ imports api.batch — a module-level import here would cycle.
        from ..corpus.features import extract_features
        from ..obs.telemetry import SolveTelemetry, get_telemetry_log
        from .cache import problem_digest

        stats = result.solve_stats
        attempts = [
            {"solver": a.solver, "wall_time_s": a.wall_time_s, "outcome": a.outcome}
            for a in (getattr(stats, "attempts", ()) or ())
        ]
        get_telemetry_log().record(
            SolveTelemetry(
                digest=problem_digest(problem),
                solver_requested=solver_requested,
                solver_used=result.solver,
                cost=result.cost,
                lower_bound=result.lower_bound,
                gap=result.gap,
                wall_time_s=stats.wall_time_s if stats is not None else 0.0,
                states_expanded=stats.states_expanded if stats is not None else None,
                options={
                    key: value
                    for key, value in options.items()
                    if isinstance(value, _SCALAR_TYPES)
                },
                features=extract_features(problem).as_dict(),
                attempts=attempts,
                trace_id=trace_id,
                ts=time.time(),
            )
        )
    except Exception:  # noqa: BLE001 - telemetry must never break a solve
        _telemetry_failures += 1
