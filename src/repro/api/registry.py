"""The solver registry: named, capability-tagged schedule producers.

Every solution method the library offers — exhaustive search, the greedy
baselines, the paper's structured per-family strategies — is registered here
under a stable name with capability tags:

* ``games`` — which game(s) the solver can play (``"rbp"``, ``"prbp"``);
* ``exact`` — whether the returned cost is the optimum by construction;
* ``families`` — :class:`~repro.core.dag.DAGFamily` names the solver is
  restricted to (empty means it accepts any DAG);
* ``min_r`` — per-problem minimum feasible capacity.

:func:`repro.api.solve` consults the registry both for explicit solver names
and for the ``solver="auto"`` portfolio.  Third-party code can plug in new
backends with the same :func:`register_solver` decorator; nothing in the
dispatch layer is specific to the built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..core.exceptions import SolverError
from .problem import GAMES, PebblingProblem
from .result import Schedule

__all__ = [
    "Solver",
    "SolverInfo",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
]


class Solver(Protocol):
    """A solver maps a problem to a validated schedule.

    ``options`` are solver-specific knobs (e.g. ``budget`` for the state cap
    of the exhaustive search); implementations must ignore options they do
    not understand.  Raise :class:`~repro.core.exceptions.SolverError` when
    the instance is unsolvable (infeasible ``r``, budget exceeded, family
    mismatch) — never return a wrong-cost schedule.
    """

    def __call__(self, problem: PebblingProblem, **options: object) -> Schedule: ...


@dataclass(frozen=True)
class SolverInfo:
    """Registry entry: the solver callable plus its capability tags."""

    name: str
    fn: Callable[..., Schedule]
    games: Tuple[str, ...]
    exact: bool = False
    families: Tuple[str, ...] = ()
    description: str = ""
    min_r: Optional[Callable[[PebblingProblem], int]] = None

    def supports(self, problem: PebblingProblem) -> bool:
        """True iff the tags say this solver can attempt ``problem``.

        Checks game, family restriction and the minimum capacity; it does
        *not* guarantee success (the solver may still raise
        :class:`SolverError`, e.g. on a budget overrun).  A family tag that
        is too malformed to even evaluate the capacity requirement counts as
        unsupported.
        """
        if problem.game not in self.games:
            return False
        if self.families:
            fam = problem.family
            if fam is None or fam.name not in self.families:
                return False
        try:
            required = self.required_r(problem)
        except SolverError:
            return False
        if required is not None and problem.r < required:
            return False
        return True

    def required_r(self, problem: PebblingProblem) -> Optional[int]:
        """The minimum capacity this solver needs for ``problem`` (None = no constraint).

        Raises
        ------
        SolverError
            If the capacity requirement cannot be evaluated — typically a
            hand-attached family tag missing the parameters the real
            generator would have recorded.
        """
        if self.min_r is None:
            return None
        try:
            return self.min_r(problem)
        except SolverError:
            raise
        except Exception as exc:
            raise SolverError(
                f"solver {self.name!r} cannot determine its minimum capacity for "
                f"{problem.describe()}: {exc}"
            ) from exc


_REGISTRY: Dict[str, SolverInfo] = {}


def register_solver(
    name: str,
    *,
    games: Sequence[str],
    exact: bool = False,
    families: Sequence[str] = (),
    description: str = "",
    min_r: Optional[Callable[[PebblingProblem], int]] = None,
) -> Callable[[Callable[..., Schedule]], Callable[..., Schedule]]:
    """Decorator registering a solver under ``name`` with capability tags.

    Raises
    ------
    ValueError
        If ``name`` is already registered (names are a global namespace; use
        :func:`unregister_solver` first to replace a built-in) or if a game
        tag is not one of ``"rbp"`` / ``"prbp"``.
    """
    for game in games:
        if game not in GAMES:
            raise ValueError(f"unknown game tag {game!r}; expected one of {GAMES}")
    if not games:
        raise ValueError("a solver must support at least one game")

    def decorator(fn: Callable[..., Schedule]) -> Callable[..., Schedule]:
        if name in _REGISTRY:
            raise ValueError(
                f"a solver named {name!r} is already registered; "
                "unregister_solver() it first if you intend to replace it"
            )
        doc_first_line = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = SolverInfo(
            name=name,
            fn=fn,
            games=tuple(games),
            exact=exact,
            families=tuple(families),
            description=description or (doc_first_line[0] if doc_first_line else ""),
            min_r=min_r,
        )
        return fn

    return decorator


def unregister_solver(name: str) -> None:
    """Remove a solver from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get_solver(name: str) -> SolverInfo:
    """Look up a registered solver by name.

    Raises
    ------
    SolverError
        If no solver of that name exists; the message lists the known names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise SolverError(f"unknown solver {name!r}; registered solvers: {known}") from None


def list_solvers(
    game: Optional[str] = None,
    exact: Optional[bool] = None,
    family: Optional[str] = None,
) -> List[SolverInfo]:
    """All registered solvers matching the given capability filters.

    ``family`` matches solvers that either name the family explicitly or are
    family-agnostic (empty ``families`` tag).  Results are sorted by name.
    """
    out = []
    for info in _REGISTRY.values():
        if game is not None and game not in info.games:
            continue
        if exact is not None and info.exact != exact:
            continue
        if family is not None and info.families and family not in info.families:
            continue
        out.append(info)
    return sorted(out, key=lambda info: info.name)


def solver_names() -> List[str]:
    """The sorted names of every registered solver."""
    return sorted(_REGISTRY)
