"""repro.api — the unified facade for posing and solving pebbling problems.

This package is the canonical entry point of the library: build a
:class:`PebblingProblem` (DAG + capacity + game + variant), call
:func:`solve`, get back a validated :class:`SolveResult` with the schedule,
its replay statistics, the best known lower bound and optimality flags.

>>> from repro.api import PebblingProblem, solve
>>> from repro.dags import kary_tree_dag
>>> result = solve(PebblingProblem(kary_tree_dag(2, 5), r=3, game="prbp"))
>>> result.cost, result.solver, result.optimal
(47, 'tree', True)

Solution methods are pluggable: every built-in (exhaustive search, greedy
baselines, the paper's per-family structured strategies) registers itself via
:func:`register_solver` with capability tags, and ``solve(...,
solver="auto")`` picks the best applicable one — exhaustive below a node
budget, a family-matched structured strategy when the DAG carries a
:class:`~repro.core.dag.DAGFamily` tag, greedy otherwise.
"""

from ..solvers.anytime import RefinementTrajectory, refine_schedule
from .batch import BatchInfo, solve_many, solve_many_detailed
from .bounds import best_lower_bound
from .cache import (
    EPHEMERAL_OPTIONS,
    WALL_CLOCK_OPTIONS,
    CacheStats,
    ResultCache,
    cacheable_options,
    default_cache_dir,
    problem_digest,
)
from .dispatch import (
    AUTO_EXACT_NODE_LIMIT,
    DEFAULT_AUTO_BUDGET,
    GREEDY_COMPARISON_NODE_LIMIT,
    solve,
)
from .problem import GAMES, PebblingProblem
from .registry import (
    Solver,
    SolverInfo,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
    unregister_solver,
)
from .result import Schedule, SolveAttempt, SolveResult, SolveStats

# importing the adapters registers every built-in solver
from . import adapters as _adapters  # noqa: F401  (import for side effect)

__all__ = [
    "PebblingProblem",
    "GAMES",
    "SolveResult",
    "SolveAttempt",
    "SolveStats",
    "Schedule",
    "solve",
    "solve_many",
    "solve_many_detailed",
    "BatchInfo",
    "ResultCache",
    "CacheStats",
    "EPHEMERAL_OPTIONS",
    "WALL_CLOCK_OPTIONS",
    "RefinementTrajectory",
    "refine_schedule",
    "problem_digest",
    "cacheable_options",
    "default_cache_dir",
    "AUTO_EXACT_NODE_LIMIT",
    "DEFAULT_AUTO_BUDGET",
    "GREEDY_COMPARISON_NODE_LIMIT",
    "Solver",
    "SolverInfo",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "best_lower_bound",
]
