"""Best-known lower bounds for a :class:`PebblingProblem`.

:func:`best_lower_bound` consults :mod:`repro.bounds` and returns the largest
bound whose preconditions the instance satisfies, together with a short tag
naming its source.  The trivial cost (sources + sinks) applies to every DAG
of the paper's standing assumption (no isolated nodes); the family-specific
closed forms of Sections 4 and 6 kick in when the DAG carries the matching
:class:`~repro.core.dag.DAGFamily` tag and the capacity is in the regime the
proof covers.

Every PRBP lower bound is also a valid RBP lower bound: by Proposition 4.1
any RBP schedule converts into a PRBP schedule of identical I/O cost, so
``OPT_RBP >= OPT_PRBP``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..bounds.analytic import (
    attention_prbp_lower_bound,
    chained_gadget_prbp_optimal_cost,
    chained_gadget_rbp_lower_bound,
    fft_prbp_lower_bound,
    matmul_prbp_lower_bound,
    matvec_rbp_lower_bound,
)
from ..dags.attention import attention_dag
from ..dags.fft import fft_dag
from ..dags.gadgets import chained_gadget_dag
from ..dags.linalg import matmul_dag, matvec_dag
from ..dags.trees import kary_tree_dag, optimal_prbp_tree_cost, optimal_rbp_tree_cost
from ..core.variants import ONE_SHOT
from .problem import PebblingProblem

__all__ = ["best_lower_bound"]

# Regenerators used to authenticate a family tag before any closed-form bound
# is trusted: a stale or hand-copied tag on a different graph (e.g. an
# induced subgraph) must contribute no bound, or `optimal` would be proved
# against a DAG the problem does not contain.
_FAMILY_DAG_BUILDERS = {
    "matvec": lambda fam: matvec_dag(fam.param("m")),
    "chained_gadget": lambda fam: chained_gadget_dag(fam.param("copies")),
    "kary_tree": lambda fam: kary_tree_dag(fam.param("k"), fam.param("depth")),
    "fft": lambda fam: fft_dag(fam.param("m")),
    "matmul": lambda fam: matmul_dag(fam.param("m1"), fam.param("m2"), fam.param("m3")),
    "attention": lambda fam: attention_dag(
        fam.param("m"), fam.param("d"), bool(fam.param("include_softmax"))
    ),
}


def _family_bounds(problem: PebblingProblem) -> List[Tuple[int, str]]:
    """All family-specific bounds whose preconditions ``problem`` satisfies.

    A malformed family tag (missing or nonsensical parameters on a
    hand-attached :class:`DAGFamily`) contributes no bound rather than
    raising, and a tag that does not regenerate the problem's DAG — a stale
    tag surviving an :meth:`induced_subgraph`, or one copied onto a different
    graph — is rejected before any closed form is trusted.  In both cases
    the trivial cost still stands.
    """
    fam = problem.family
    if fam is None:
        return []
    try:
        builder = _FAMILY_DAG_BUILDERS.get(fam.name)
        if builder is None or builder(fam) != problem.dag:
            # Fail closed: a family with bounds but no regenerator entry gets
            # no closed form, so the two tables cannot drift apart unsafely.
            return []
        return _family_bounds_checked(problem, fam)
    except Exception:
        return []


def _family_bounds_checked(problem: PebblingProblem, fam) -> List[Tuple[int, str]]:
    r, game = problem.r, problem.game
    out: List[Tuple[int, str]] = []
    if fam.name == "matvec" and game == "rbp":
        m = fam.param("m")
        if m + 3 <= r <= 2 * m:
            out.append((matvec_rbp_lower_bound(m), "prop4.3"))
    elif fam.name == "chained_gadget":
        if game == "prbp":
            out.append((chained_gadget_prbp_optimal_cost(), "prop4.7"))
        elif r == 4:
            out.append((chained_gadget_rbp_lower_bound(fam.param("copies")), "prop4.7"))
    elif fam.name == "kary_tree":
        k, depth = fam.param("k"), fam.param("depth")
        if r == k + 1:
            # the Appendix A.2 closed forms are exact optima at the critical capacity
            if game == "rbp":
                out.append((optimal_rbp_tree_cost(k, depth), "appA.2"))
            else:
                out.append((optimal_prbp_tree_cost(k, depth), "appA.2"))
    elif fam.name == "fft":
        out.append((fft_prbp_lower_bound(fam.param("m"), r), "thm6.9"))
    elif fam.name == "matmul":
        out.append(
            (matmul_prbp_lower_bound(fam.param("m1"), fam.param("m2"), fam.param("m3"), r), "thm6.10")
        )
    elif fam.name == "attention" and not fam.param("include_softmax"):
        out.append((attention_prbp_lower_bound(fam.param("m"), fam.param("d"), r), "thm6.11"))
    return out


def best_lower_bound(problem: PebblingProblem) -> Tuple[Optional[int], str]:
    """The largest applicable lower bound on ``OPT`` and a tag naming its source.

    Returns ``(None, "")`` when no bound applies (a DAG with isolated nodes,
    or a non-one-shot variant where the Section 4/6 arguments need care).
    """
    if problem.variant != ONE_SHOT:
        # The counting arguments are stated for the one-shot game; the trivial
        # cost still holds (every source load / sink save is unavoidable), but
        # only for variants that keep I/O mandatory.  Stay conservative.
        return None, ""
    dag = problem.dag
    if dag.n > 1 and any(
        not dag.predecessors(v) and not dag.successors(v) for v in dag.nodes()
    ):
        return None, ""
    candidates: List[Tuple[int, str]] = [(dag.trivial_cost(), "trivial")]
    candidates.extend(_family_bounds(problem))
    bound, source = max(candidates, key=lambda pair: pair[0])
    return bound, source
