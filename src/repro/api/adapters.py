"""Built-in solver registrations: thin adapters over the existing solvers.

Importing this module (done by ``repro.api.__init__``) populates the registry
with every solution method the library ships:

* ``exhaustive`` — optimal A* search, both games, ``exact`` (small DAGs);
* ``greedy`` — topological processing with Belady eviction, both games, any DAG;
* ``naive`` — spill-everything baseline, both games, any DAG;
* one structured strategy per DAG family of the paper (``figure1``,
  ``chained-gadget``, ``matvec-streaming``, ``zipper``, ``tree``,
  ``collection``, ``fanin-streaming``, ``fft-blocked``, ``matmul-tiled``,
  ``attention-flash``), each restricted to its
  :class:`~repro.core.dag.DAGFamily` tag and to the capacity regime its
  proof covers.

Family adapters rebuild the layout object from the tag parameters and verify
it reproduces the problem's DAG, so a hand-built DAG that merely *claims* a
family can never be answered with a schedule for a different graph.
"""

from __future__ import annotations

from typing import Callable

from ..core.dag import DAGFamily
from ..core.exceptions import IllegalMoveError, SolverError
from ..core.variants import ONE_SHOT
from ..dags.attention import attention_instance
from ..dags.fanin import fanin_groups_instance
from ..dags.fft import fft_instance
from ..dags.gadgets import (
    chained_gadget_instance,
    figure1_instance,
    pebble_collection_instance,
    zipper_instance,
)
from ..dags.linalg import matmul_instance, matvec_instance
from ..dags.trees import kary_tree_instance
from ..solvers.anytime import (
    BEAM_NODE_LIMIT,
    beam_construct,
    refine_schedule,
    schedule_io_count,
)
from ..solvers.baselines import naive_prbp_schedule, naive_rbp_schedule
from ..solvers.exhaustive import (
    DEFAULT_MAX_STATES,
    optimal_prbp_schedule,
    optimal_rbp_schedule,
)
from ..solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule
from ..solvers import structured
from .problem import PebblingProblem
from .registry import list_solvers, register_solver
from .result import Schedule

__all__: list = []


# --------------------------------------------------------------------------- #
# generic solvers
# --------------------------------------------------------------------------- #


@register_solver(
    "exhaustive",
    games=("rbp", "prbp"),
    exact=True,
    description="optimal A* search over game configurations (small DAGs)",
)
def _exhaustive(problem: PebblingProblem, **options: object) -> Schedule:
    budget = options.get("budget")
    max_states = int(budget) if budget is not None else DEFAULT_MAX_STATES
    if problem.game == "rbp":
        return optimal_rbp_schedule(
            problem.dag, problem.r, variant=problem.variant, max_states=max_states
        )
    return optimal_prbp_schedule(
        problem.dag, problem.r, variant=problem.variant, max_states=max_states
    )


@register_solver(
    "greedy",
    games=("rbp", "prbp"),
    description="topological processing with Belady eviction (any DAG)",
)
def _greedy(problem: PebblingProblem, **options: object) -> Schedule:
    if problem.game == "rbp":
        return greedy_rbp_schedule(problem.dag, problem.r, variant=problem.variant)
    return topological_prbp_schedule(problem.dag, problem.r, variant=problem.variant)


@register_solver(
    "naive",
    games=("rbp", "prbp"),
    description="spill-everything baseline (worst reasonable upper bound)",
)
def _naive(problem: PebblingProblem, **options: object) -> Schedule:
    if problem.game == "rbp":
        return naive_rbp_schedule(problem.dag, problem.r, variant=problem.variant)
    return naive_prbp_schedule(problem.dag, problem.r, variant=problem.variant)


def _anytime_min_r(problem: PebblingProblem) -> int:
    # the greedy seeds' feasibility floors: PRBP pebbles any DAG with 2
    # pebbles, RBP needs every input of a node in fast memory at once
    if problem.game == "prbp":
        return 2 if problem.dag.m > 0 else 1
    return problem.dag.max_in_degree + 1


@register_solver(
    "anytime",
    games=("rbp", "prbp"),
    description="budgeted local-search refinement over greedy/structured/beam seeds",
    min_r=_anytime_min_r,
)
def _anytime(problem: PebblingProblem, **options: object) -> Schedule:
    """Anytime portfolio: seed with the cheapest known schedule, then refine.

    Seeds are gathered from every family-matched structured solver plus the
    greedy baseline; a beam-search constructor (bounded by the best seed's
    cost) joins in on DAGs of at most ``BEAM_NODE_LIMIT`` nodes.  The
    cheapest seed is refined under the configured step/wall-clock budget —
    the returned schedule never costs more than the best seed.

    Options: ``refine_steps`` (or ``budget``) for the mutation-attempt
    budget, ``time_budget_s`` for a wall-clock ceiling, ``seed`` for the
    RNG, ``beam_width=0`` to disable the constructor.
    """
    seeds: list = []
    failures: list = []
    for info in list_solvers(game=problem.game):
        if not info.families or not info.supports(problem):
            continue
        try:
            schedule = info.fn(problem)
        except SolverError as exc:
            failures.append((info.name, str(exc)))
            continue
        seeds.append((info.name, schedule))
    try:
        if problem.game == "rbp":
            greedy = greedy_rbp_schedule(problem.dag, problem.r, variant=problem.variant)
        else:
            greedy = topological_prbp_schedule(problem.dag, problem.r, variant=problem.variant)
        seeds.append(("greedy", greedy))
    except (SolverError, IllegalMoveError) as exc:
        # IllegalMoveError: a variant (e.g. no-deletion) forbids the moves
        # the greedy builder relies on — not a seed, but not fatal either
        failures.append(("greedy", str(exc)))
    if not seeds:
        detail = "; ".join(f"{name}: {reason}" for name, reason in failures)
        raise SolverError(
            f"anytime solver found no seed schedule for {problem.describe()} — {detail}"
        )

    best_cost, origin, best = min(
        ((schedule_io_count(schedule), name, schedule) for name, schedule in seeds),
        key=lambda scored: scored[0],
    )

    rng_seed = int(options.get("seed") or 0)
    beam_width = options.get("beam_width")
    width = 6 if beam_width is None else int(beam_width)
    if width > 0 and problem.n <= int(options.get("beam_node_limit", BEAM_NODE_LIMIT)):
        constructed = beam_construct(
            problem.dag,
            problem.r,
            problem.game,
            problem.variant,
            upper_bound=best_cost,
            width=width,
            seed=rng_seed,
        )
        if constructed is not None:
            origin, best = "beam", constructed

    steps = options.get("refine_steps", options.get("budget"))
    time_budget_s = options.get("time_budget_s")
    on_progress = options.get("on_progress")
    refined, _trajectory = refine_schedule(
        best,
        steps=None if steps is None else int(steps),
        time_budget_s=None if time_budget_s is None else float(time_budget_s),
        seed=rng_seed,
        origin=origin,
        on_improve=on_progress if callable(on_progress) else None,
    )
    return refined


# --------------------------------------------------------------------------- #
# structured per-family strategies
# --------------------------------------------------------------------------- #


def _family_tag(problem: PebblingProblem, expected: str) -> DAGFamily:
    """The problem's family tag, checked against the adapter's family."""
    fam = problem.family
    if fam is None or fam.name != expected:
        raise SolverError(
            f"this solver targets the {expected!r} family, "
            f"but the problem's DAG carries {str(fam) if fam else 'no family tag'}"
        )
    if problem.variant != ONE_SHOT:
        raise SolverError(
            "the structured strategies are stated for the one-shot variant; "
            f"got {problem.variant.describe()}"
        )
    return fam


def _rebuild(problem: PebblingProblem, builder: Callable, *args: object):
    """Regenerate the layout instance from the family tag and check it.

    Guards against forged or malformed tags twice: a tag whose parameters the
    generator rejects (missing keys surface as ``None``) raises a
    :class:`SolverError` rather than leaking the generator's
    ``ValueError``/``TypeError``, and a tag that regenerates a *different*
    graph than the problem's DAG is refused outright.
    """
    try:
        inst = builder(*args)
    except SolverError:
        raise
    except Exception as exc:
        raise SolverError(
            f"the family tag {problem.family} is malformed — "
            f"{builder.__name__} rejected its parameters: {exc}"
        ) from exc
    if inst.dag != problem.dag:
        raise SolverError(
            f"the family tag {problem.family} does not reproduce the problem's DAG "
            f"(n={problem.dag.n}, m={problem.dag.m}); was the tag copied onto a different graph?"
        )
    return inst


@register_solver(
    "figure1",
    games=("rbp", "prbp"),
    families=("figure1",),
    description="Appendix A.1 hand strategy for the Figure 1 gadget (Prop. 4.2)",
    min_r=lambda p: structured.FIGURE1_MIN_R,
)
def _figure1(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "figure1")
    if not fam.param("include_endpoints") or fam.param("with_z_layer") or fam.param("with_w0"):
        raise SolverError("the A.1 strategy targets the plain Figure 1 DAG with endpoints")
    inst = _rebuild(problem, figure1_instance, True)
    if problem.game == "rbp":
        return structured.figure1_rbp_schedule(inst, r=problem.r)
    return structured.figure1_prbp_schedule(inst, r=problem.r)


@register_solver(
    "chained-gadget",
    games=("prbp",),
    families=("chained_gadget",),
    description="Proposition 4.7 chain strategy: PRBP cost 2 at any length",
    min_r=lambda p: structured.CHAINED_GADGET_MIN_R,
)
def _chained_gadget(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "chained_gadget")
    inst = _rebuild(problem, chained_gadget_instance, fam.param("copies"))
    return structured.chained_gadget_prbp_schedule(inst, r=problem.r)


@register_solver(
    "matvec-streaming",
    games=("prbp",),
    families=("matvec",),
    description="Proposition 4.3 column-streaming strategy: trivial cost m²+2m",
    min_r=lambda p: structured.matvec_min_r(p.family.param("m")),
)
def _matvec(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "matvec")
    inst = _rebuild(problem, matvec_instance, fam.param("m"))
    return structured.matvec_prbp_schedule(inst, r=problem.r)


@register_solver(
    "zipper",
    games=("rbp", "prbp"),
    families=("zipper",),
    description="Proposition 4.4 zipper strategies (two-phase PRBP / alternating RBP)",
    min_r=lambda p: structured.zipper_min_r(p.family.param("d")),
)
def _zipper(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "zipper")
    inst = _rebuild(problem, zipper_instance, fam.param("d"), fam.param("length"))
    if problem.game == "rbp":
        return structured.zipper_rbp_schedule(inst, r=problem.r)
    return structured.zipper_prbp_schedule(inst, r=problem.r)


@register_solver(
    "tree",
    games=("rbp", "prbp"),
    families=("kary_tree",),
    description="Appendix A.2 k-ary reduction-tree strategies (optimal at r = k + 1)",
    min_r=lambda p: structured.tree_min_r(p.family.param("k")),
)
def _tree(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "kary_tree")
    inst = _rebuild(problem, kary_tree_instance, fam.param("k"), fam.param("depth"))
    if problem.game == "rbp":
        return structured.tree_rbp_schedule(inst, r=problem.r)
    return structured.tree_prbp_schedule(inst, r=problem.r)


@register_solver(
    "collection",
    games=("rbp", "prbp"),
    families=("pebble_collection",),
    description="Proposition 4.6 full-pebble strategy for the collection gadget",
    min_r=lambda p: structured.collection_min_r(p.family.param("d")),
)
def _collection(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "pebble_collection")
    inst = _rebuild(problem, pebble_collection_instance, fam.param("d"), fam.param("length"))
    if problem.game == "rbp":
        return structured.collection_full_rbp_schedule(inst, r=problem.r)
    return structured.collection_full_prbp_schedule(inst, r=problem.r)


@register_solver(
    "fanin-streaming",
    games=("prbp",),
    families=("fanin_groups",),
    description="Lemma 5.4 group-streaming strategy: trivial cost with 3 pebbles",
    min_r=lambda p: structured.FANIN_MIN_R,
)
def _fanin(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "fanin_groups")
    inst = _rebuild(problem, fanin_groups_instance, fam.param("num_groups"), fam.param("group_size"))
    return structured.fanin_groups_prbp_schedule(inst, r=problem.r)


@register_solver(
    "fft-blocked",
    games=("rbp", "prbp"),
    families=("fft",),
    description="Theorem 6.9 blocked butterfly strategy: O(m·log m / log r) I/O",
    min_r=lambda p: structured.FFT_MIN_R,
)
def _fft(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "fft")
    inst = _rebuild(problem, fft_instance, fam.param("m"))
    if problem.game == "rbp":
        return structured.fft_blocked_rbp_schedule(inst, r=problem.r)
    return structured.fft_blocked_prbp_schedule(inst, r=problem.r)


@register_solver(
    "matmul-tiled",
    games=("prbp",),
    families=("matmul",),
    description="Theorem 6.10 outer-product tiled strategy: O(m1·m2·m3/√r) I/O",
    min_r=lambda p: structured.MATMUL_MIN_R,
)
def _matmul(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "matmul")
    inst = _rebuild(problem, matmul_instance, fam.param("m1"), fam.param("m2"), fam.param("m3"))
    return structured.matmul_tiled_prbp_schedule(inst, r=problem.r)


@register_solver(
    "attention-flash",
    games=("prbp",),
    families=("attention",),
    description="Theorem 6.11 flash-style tiled strategy for Q·Kᵀ + exp",
    min_r=lambda p: structured.attention_min_r(p.family.param("d")),
)
def _attention(problem: PebblingProblem, **options: object) -> Schedule:
    fam = _family_tag(problem, "attention")
    if fam.param("include_softmax"):
        raise SolverError("the flash-style strategy targets the truncated attention DAG")
    inst = _rebuild(problem, attention_instance, fam.param("m"), fam.param("d"))
    return structured.attention_flash_prbp_schedule(inst, r=problem.r)
