"""The :class:`SolveResult` container returned by :func:`repro.api.solve`.

A result always carries a *validated* schedule (the cost is the cost of an
actually legal pebbling, replayed through the engine), the replay statistics,
the best lower bound the library knows for the instance, and the optimality
flags derived from the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..core.exceptions import PebblingError
from ..core.strategy import PRBPSchedule, RBPSchedule, ScheduleStats
from ..solvers.anytime import RefinementTrajectory
from .problem import PebblingProblem

__all__ = ["SolveResult", "SolveStats", "SolveAttempt", "Schedule"]

#: Either game's schedule type.
Schedule = Union[RBPSchedule, PRBPSchedule]


@dataclass(frozen=True)
class SolveAttempt:
    """One portfolio member's run inside a ``solver="auto"`` solve.

    Attributes
    ----------
    solver:
        Registry name of the attempted solver.
    wall_time_s:
        Wall-clock seconds the attempt consumed (0.0 for skipped members).
    outcome:
        ``"won"`` (its schedule was returned), ``"lost"`` (produced a
        schedule that a cheaper candidate beat), ``"failed"`` (raised),
        or ``"skipped"`` (not run, e.g. instance too large for search).
    """

    solver: str
    wall_time_s: float
    outcome: str


@dataclass(frozen=True)
class SolveStats:
    """Execution statistics of the solver run that produced a result.

    Attributes
    ----------
    wall_time_s:
        Wall-clock seconds spent producing the result, including the
        validation replay of its schedule.  For ``solver="auto"`` this is
        the *total* portfolio wall time — failed and losing attempts
        included — so telemetry attributes the true cost of an auto
        solve; the per-member split is in :attr:`attempts`.
    states_expanded:
        Number of configurations the exhaustive A* search expanded, when the
        winning solver was the exhaustive one; ``None`` for solvers that do
        not search (greedy, structured strategies).
    states_frontier_peak:
        Peak size of the A* open list, under the same conditions.
    refinement:
        The anytime-refinement trajectory (initial cost, refined cost,
        steps, time-to-best) when the result went through the refinement
        engine — either the ``"anytime"`` solver or the auto portfolio's
        final improvement pass; ``None`` otherwise.
    attempts:
        Per-member timing breakdown of the auto portfolio (see
        :class:`SolveAttempt`); empty for direct solver calls.  Read with
        ``getattr(stats, "attempts", ())`` when the stats object may come
        from a cache entry pickled by an older version.
    """

    wall_time_s: float
    states_expanded: Optional[int] = None
    states_frontier_peak: Optional[int] = None
    refinement: Optional[RefinementTrajectory] = None
    attempts: Tuple[SolveAttempt, ...] = ()


@dataclass(frozen=True)
class SolveResult:
    """A solved pebbling instance.

    Attributes
    ----------
    problem:
        The instance that was solved.
    schedule:
        The validated move list (an :class:`RBPSchedule` or
        :class:`PRBPSchedule` matching ``problem.game``).
    stats:
        Replay statistics: per-kind move counts, I/O cost, peak red pebbles.
    solver:
        Registry name of the solver that produced the schedule (for
        ``solver="auto"`` this is the portfolio member that won).
    exact_solver:
        True iff the schedule came from a solver registered with the
        ``exact`` capability (exhaustive search), so its cost *is* the
        optimum by construction.
    lower_bound:
        The best lower bound :mod:`repro.bounds` offers for this instance
        (at least the trivial cost), or ``None`` when none applies.
    lower_bound_source:
        Which bound supplied ``lower_bound`` (``"trivial"``, ``"thm6.9"``,
        ...); empty when ``lower_bound`` is None.
    solve_stats:
        Execution statistics of the winning solver run (wall time and, for
        exhaustive search, the expanded-state counters); ``None`` for results
        assembled outside :func:`repro.api.solve`.
    """

    problem: PebblingProblem
    schedule: Schedule
    stats: ScheduleStats
    solver: str
    exact_solver: bool
    lower_bound: Optional[int] = None
    lower_bound_source: str = ""
    solve_stats: Optional[SolveStats] = None

    @property
    def cost(self) -> int:
        """I/O cost of the validated schedule."""
        return self.stats.io_cost

    @property
    def optimal(self) -> bool:
        """True iff the cost is provably the optimum.

        Either an exact solver produced the schedule, or the achieved cost
        meets the best known lower bound (a matching upper/lower pair is a
        proof of optimality regardless of which solver found the schedule).

        Raises
        ------
        PebblingError
            If the validated cost is strictly *below* the claimed lower
            bound — a mathematically impossible state that can only mean a
            broken bound formula or a bound computed for a different
            instance; it is surfaced rather than converted into a false
            optimality proof.
        """
        if self.lower_bound is not None and self.cost < self.lower_bound:
            raise PebblingError(
                f"inconsistent result for {self.problem.describe()}: the validated schedule "
                f"costs {self.cost}, strictly below the claimed lower bound "
                f"{self.lower_bound} ({self.lower_bound_source}) — the bound is wrong for "
                "this instance"
            )
        if self.exact_solver:
            return True
        return self.lower_bound is not None and self.cost == self.lower_bound

    @property
    def upper_bound(self) -> bool:
        """True iff the cost is only known to be achievable, not optimal."""
        return not self.optimal

    @property
    def gap(self) -> Optional[int]:
        """``cost - lower_bound`` (None when no lower bound is known)."""
        if self.lower_bound is None:
            return None
        return self.cost - self.lower_bound

    def describe(self) -> str:
        """One-line human-readable summary."""
        quality = "optimal" if self.optimal else "upper bound"
        lb = f", lower bound {self.lower_bound} ({self.lower_bound_source})" if self.lower_bound is not None else ""
        return (
            f"{self.problem.describe()}: cost {self.cost} ({quality}, solver={self.solver}{lb}), "
            f"{self.stats.moves} moves, peak red {self.stats.peak_red}"
        )
