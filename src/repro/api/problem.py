"""The :class:`PebblingProblem` value object: one fully specified instance.

A problem bundles everything a solver needs to produce a schedule — the DAG,
the fast-memory capacity ``r``, which game is being played (``"rbp"`` or
``"prbp"``) and which rule variant applies.  Bundling the four removes the
main source of friction in the pre-facade API, where every solver invented
its own positional signature and callers had to remember which one takes
``(dag, r)`` and which takes ``(inst, m, r)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.dag import ComputationalDAG, DAGFamily
from ..core.variants import ONE_SHOT, GameVariant

__all__ = ["PebblingProblem", "GAMES"]

#: The two pebble games the library implements.
GAMES = ("rbp", "prbp")


@dataclass(frozen=True)
class PebblingProblem:
    """An immutable pebbling instance: *what* to solve, not *how*.

    Parameters
    ----------
    dag:
        The computational DAG to pebble.
    r:
        Fast-memory capacity (number of red pebbles), ``>= 1``.
    game:
        ``"rbp"`` for the classic Hong–Kung game, ``"prbp"`` for the
        partial-computing extension (the default — it is the paper's subject).
    variant:
        Rule toggles (one-shot / re-computation / sliding / no-deletion /
        compute costs); defaults to the one-shot game the paper analyses.

    Examples
    --------
    >>> from repro.api import PebblingProblem, solve
    >>> from repro.dags import figure1_gadget
    >>> solve(PebblingProblem(figure1_gadget(), r=4, game="prbp")).cost
    2
    """

    dag: ComputationalDAG
    r: int
    game: str = "prbp"
    variant: GameVariant = field(default=ONE_SHOT)

    def __post_init__(self) -> None:
        if self.game not in GAMES:
            raise ValueError(f"game must be one of {GAMES}, got {self.game!r}")
        if self.r < 1:
            raise ValueError(f"capacity r must be >= 1, got {self.r}")
        if not isinstance(self.dag, ComputationalDAG):
            raise TypeError(f"dag must be a ComputationalDAG, got {type(self.dag).__name__}")

    # ------------------------------------------------------------------ #
    # convenience views
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes of the underlying DAG."""
        return self.dag.n

    @property
    def family(self) -> Optional[DAGFamily]:
        """The generator tag of the DAG, if it was built by :mod:`repro.dags`."""
        return self.dag.family

    @property
    def trivial_cost(self) -> int:
        """The unavoidable I/O floor: sources + sinks."""
        return self.dag.trivial_cost()

    def with_game(self, game: str) -> "PebblingProblem":
        """The same instance posed in the other game (used by comparisons)."""
        return replace(self, game=game)

    def with_r(self, r: int) -> "PebblingProblem":
        """The same instance at a different capacity (used by sweeps)."""
        return replace(self, r=r)

    def describe(self) -> str:
        """One-line summary used in error messages and reports."""
        fam = f", family={self.family}" if self.family is not None else ""
        return (
            f"{self.game.upper()} on {self.dag.name!r} "
            f"(n={self.dag.n}, m={self.dag.m}, r={self.r}{fam})"
        )
