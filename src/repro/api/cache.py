"""Content-addressed result cache for solved pebbling problems.

:class:`ResultCache` stores validated :class:`~repro.api.result.SolveResult`
objects keyed by :func:`problem_digest` — a SHA-256 over everything that can
influence a ``solve()`` call: the DAG's exact content (numbering, edge
order, labels — which determines its canonical form, see
:mod:`repro.core.canonical`), the family tag, capacity, game, variant, the
requested solver and its options, and a cache format version.  Two calls
with equal digests are therefore guaranteed to produce identical results,
which is what lets :func:`repro.api.solve_many` return cached entries in
place of fresh solves without weakening its serial-equivalence contract.

Entries live in a bounded in-memory LRU and, when a directory is configured,
on disk as ``<dir>/<digest[:2]>/<digest>.pkl``.  Since format version 3 the
schedule inside a disk entry is stored in the columnar interchange form of
:mod:`repro.core.schedule_ir` (packed ``op``/``node``/``arg`` arrays) rather
than as a pickled list of Move objects.  Disk entries are written atomically
and carry a payload checksum; on read the checksum is verified, the pickle
is loaded defensively, the stored problem is compared against the requested
one, the columns are decoded, and (by default) the schedule is replayed
through the vectorised replay kernel.  Anything that fails — truncation,
bit flips, stale pickles from another library version, old-format entries,
digest collisions — counts as *corrupt*: the entry is deleted and the
caller falls back to recomputation.  A cache can slow a run down, but it
can never change an answer.

Invalidation: digests include :data:`CACHE_FORMAT_VERSION` and the installed
``repro-prbp`` version, so upgrading either abandons old entries in place
(delete the directory to reclaim the space).  Point ``REPRO_CACHE_DIR`` at a
different location to redirect :func:`default_cache_dir`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Mapping, Optional, Union

from ..core.canonical import dag_digest
from ..core.schedule_ir import (
    from_schedule,
    ir_digest,
    ir_from_arrays,
    kernel_stats,
    pack_arrays,
    to_schedule,
    unpack_arrays,
)
from ..core.strategy import ScheduleStats
from ..obs.metrics import CounterFamily, MetricsRegistry
from .problem import PebblingProblem
from .result import SolveResult

__all__ = [
    "CACHE_FORMAT_VERSION",
    "EPHEMERAL_OPTIONS",
    "WALL_CLOCK_OPTIONS",
    "CacheStats",
    "ResultCache",
    "cacheable_options",
    "default_cache_dir",
    "problem_digest",
]

#: Bumped whenever the digest inputs or the on-disk layout change shape.
#: v3: disk entries carry the schedule as packed schedule-IR columns and are
#: re-verified through the replay kernel on read.
CACHE_FORMAT_VERSION = 3

#: Solver options that are wall-clock budgets.  They never enter the content
#: digest — a digest must identify the *deterministic* inputs of a solve,
#: and a wall-clock budget is not one: the same budget yields different
#: schedules on different machines (or under different load), so including
#: it would let two runs share a digest while disagreeing on cost-bearing
#: fields.  For the same reason a solve carrying an active wall-clock budget
#: is excluded from caching altogether (see :func:`cacheable_options`).
WALL_CLOCK_OPTIONS = frozenset({"time_budget_s"})

#: Observer-only options that cannot influence the *result* of a solve.
#: ``on_progress`` is a callback receiving anytime-progress events; two
#: solves differing only in it return identical results, so it enters
#: neither the digest nor the cacheability decision (its ``repr`` is also a
#: memory address, which would make every digest spuriously unique).
EPHEMERAL_OPTIONS = frozenset({"on_progress"})


def cacheable_options(options: Optional[Mapping[str, object]]) -> bool:
    """True iff a solve with these options has a deterministic, cacheable result.

    A solve driven by an active wall-clock budget (``time_budget_s``) can
    legitimately return different schedules run to run, so neither serving
    it from a cache nor storing it is sound.  Step budgets and RNG seeds are
    deterministic and stay cacheable (and digested).
    """
    if not options:
        return True
    return not any(options.get(key) is not None for key in WALL_CLOCK_OPTIONS)

#: Environment variable overriding :func:`default_cache_dir`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@lru_cache(maxsize=1)
def _library_version() -> str:
    # memoized: importlib.metadata scans installed distributions on disk,
    # and problem_digest calls this once per problem per batch
    try:
        from importlib.metadata import version

        return version("repro-prbp")
    except Exception:
        return "unknown"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-prbp``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-prbp"


def problem_digest(
    problem: PebblingProblem,
    solver: str = "auto",
    options: Optional[Mapping[str, object]] = None,
) -> str:
    """Hex SHA-256 identifying one ``solve(problem, solver, **options)`` call.

    Everything observable by a solver goes in: the exact DAG digest (via
    :func:`repro.core.canonical.dag_digest`), the family tag, the
    capacity/game/variant triple, the requested solver name, the options with
    keys sorted, and the cache format + library versions.  Option values are
    hashed through ``repr`` — solver options are plain scalars today, and a
    custom option type only risks a spurious miss, never a false hit, as long
    as its ``repr`` reflects its value.

    Wall-clock budget options (:data:`WALL_CLOCK_OPTIONS`) are deliberately
    *excluded*: they do not deterministically identify a result, so the
    digest covers budget-insensitive identity only and the batch layer
    additionally refuses to cache wall-clock-budgeted solves at all.
    """
    fam = problem.dag.family
    digested = {
        key: value
        for key, value in (options or {}).items()
        if key not in WALL_CLOCK_OPTIONS and key not in EPHEMERAL_OPTIONS
    }
    h = hashlib.sha256()
    h.update(
        repr(
            (
                CACHE_FORMAT_VERSION,
                _library_version(),
                dag_digest(problem.dag),
                None if fam is None else (fam.name, fam.params),
                problem.r,
                problem.game,
                problem.variant,
                solver,
                tuple(sorted(digested.items(), key=lambda kv: kv[0])),
            )
        ).encode()
    )
    return h.hexdigest()


@dataclass
class CacheStats:
    """Mutable counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    io_errors: int = 0
    evicted: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "io_errors": self.io_errors,
            "evicted": self.evicted,
        }


@dataclass
class ResultCache:
    """Two-level (memory LRU + optional disk) cache of solve results.

    Parameters
    ----------
    directory:
        Root of the on-disk store; ``None`` keeps the cache memory-only.
        Created on first write.
    max_memory_entries:
        Bound on the in-memory LRU (oldest entries are evicted first).
    max_disk_bytes:
        Optional cap on the total size of the on-disk tier.  After every
        disk write the store is pruned *least-recently-used-first* until it
        fits under the cap — the policy a long-running daemon needs, since
        the disk tier otherwise grows one pickle per distinct problem
        forever.  Recency is tracked in the entry's mtime: every successful
        disk read touches the file, so a constantly-hit hot entry survives
        prunes that evict never-read colder ones (without the touch,
        eviction would silently degrade to FIFO by write time).
        ``None`` (the default) keeps the historical unbounded behaviour.
        A cap smaller than a single entry prunes that entry too: the cache
        degrades to memory-only rather than overshooting its budget.
        Several processes (e.g. the solve nodes of a cluster) may share one
        directory: a file another process pruned between this process's
        scan and its own delete is treated as already pruned, never as an
        error.
    validate:
        When True (default), a disk entry's decoded schedule is replayed
        through the vectorised replay kernel before being served and its
        statistics are compared against the stored ones — the same "never
        trust, always replay" policy the rest of the library follows.
        Memory entries are served as stored; they never left the process.
    """

    directory: Optional[Union[str, Path]] = None
    max_memory_entries: int = 1024
    max_disk_bytes: Optional[int] = None
    validate: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        self._ops: Optional[CounterFamily] = None
        if self.metrics is not None:
            self._ops = self.metrics.counter(
                "repro_cache_ops_total",
                "Result-cache events by kind (hits are tier-qualified).",
                labels=("event",),
            )
        if self.directory is not None:
            # expanduser so the documented ResultCache(directory="~/.cache/...")
            # reaches the home cache instead of creating a literal "~" dir
            self.directory = Path(self.directory).expanduser()
        self._memory: "OrderedDict[str, SolveResult]" = OrderedDict()
        #: Running size of the disk tier, maintained incrementally so a
        #: capped put() does not rescan the whole store; ``None`` = not yet
        #: measured (first capped write pays one full scan).
        self._disk_total: Optional[int] = None

    def _count(self, event: str) -> None:
        """Mirror a CacheStats increment into the metrics registry."""
        if self._ops is not None:
            self._ops.inc(event=event)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def get(self, problem: PebblingProblem, digest: str) -> Optional[SolveResult]:
        """The cached result for ``digest``, or ``None`` (counted as a miss).

        ``problem`` is the instance the caller is about to solve; it is
        compared against the stored entry's problem so that even a SHA-256
        collision (or a forged file) cannot smuggle in a result for a
        different instance.
        """
        cached = self._memory.get(digest)
        if cached is not None:
            self._memory.move_to_end(digest)
            self.stats.hits += 1
            self._count("hit_memory")
            return cached
        if self.directory is not None:
            cached = self._read_disk(problem, digest)
            if cached is not None:
                self._remember(digest, cached)
                self.stats.hits += 1
                self._count("hit_disk")
                return cached
        self.stats.misses += 1
        self._count("miss")
        return None

    def put(self, digest: str, result: SolveResult) -> None:
        """Store a result under its digest (memory always, disk if configured)."""
        self._remember(digest, result)
        self.stats.stores += 1
        self._count("store")
        if self.directory is None:
            return
        try:
            path = self._path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            doc = self._encode_entry(digest, result)
            payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
            checksum = hashlib.sha256(payload).hexdigest().encode("ascii")
            replaced_size = 0
            if self.max_disk_bytes is not None:
                try:
                    replaced_size = path.stat().st_size  # overwriting an entry
                except OSError:
                    replaced_size = 0
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(checksum + b"\n" + payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if self.max_disk_bytes is not None:
                # keep a running total so the common under-cap put() costs
                # two stat() calls, not a scan of the whole store
                written = len(checksum) + 1 + len(payload)
                if self._disk_total is None:
                    self._disk_total = self.disk_bytes()
                else:
                    self._disk_total += written - replaced_size
                if self._disk_total > int(self.max_disk_bytes):
                    self._prune_disk(int(self.max_disk_bytes))
        except (OSError, pickle.PicklingError):
            self.stats.io_errors += 1  # a cache that cannot write is still a cache
            self._count("io_error")

    def clear(self) -> None:
        """Drop every memory entry and delete every disk entry."""
        self._memory.clear()
        self._disk_total = None  # remeasure lazily after the deletions
        if self.directory is None:
            return
        root = Path(self.directory)
        if not root.exists():
            return
        for sub in root.iterdir():
            if sub.is_dir() and len(sub.name) == 2:
                for entry in sub.glob("*.pkl"):
                    try:
                        entry.unlink()
                    except OSError:
                        self.stats.io_errors += 1
                        self._count("io_error")

    def __len__(self) -> int:
        return len(self._memory)

    def disk_bytes(self) -> int:
        """Total size of the on-disk tier in bytes (0 for a memory-only cache)."""
        return sum(size for _, size, _ in self._disk_entries())

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _path(self, digest: str) -> Path:
        return Path(self.directory) / digest[:2] / f"{digest}.pkl"

    def _remember(self, digest: str, result: SolveResult) -> None:
        self._memory[digest] = result
        self._memory.move_to_end(digest)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _disk_entries(self) -> "list[tuple[float, int, Path]]":
        """Every on-disk entry as ``(mtime, size, path)``; missing dir -> empty.

        Only ``<2-hex-chars>/<digest>.pkl`` files count — in-flight ``.tmp-*``
        writes and foreign files sharing the directory are never touched.
        """
        if self.directory is None:
            return []
        root = Path(self.directory)
        entries: "list[tuple[float, int, Path]]" = []
        try:
            subdirs = [sub for sub in root.iterdir() if sub.is_dir() and len(sub.name) == 2]
        except OSError:
            return []
        for sub in subdirs:
            try:
                for entry in sub.glob("*.pkl"):
                    if entry.name.startswith(".tmp-"):
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue  # raced with a concurrent prune/clear
                    entries.append((stat.st_mtime, stat.st_size, entry))
            except OSError:
                continue
        return entries

    def _prune_disk(self, max_disk_bytes: int) -> None:
        """Delete least-recently-used-first until the disk tier fits the cap.

        Reads refresh an entry's mtime (see :meth:`_read_disk`), so mtime
        ascending is recency order, not just write order; path breaks
        same-second ties deterministically.  Scans the store once (the scan
        is also the authoritative recount — the incremental total in
        :meth:`put` can drift if another process shares the directory) and
        leaves ``_disk_total`` exact.

        A file that vanishes between the scan and our unlink was pruned by
        a peer process sharing the directory; its bytes are gone either
        way, so it is accounted as already pruned and the pass continues.
        """
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        # mtime ascending = least recently used; path breaks same-second ties
        for _, size, path in sorted(entries, key=lambda e: (e[0], str(e[2]))):
            if total <= max_disk_bytes:
                break
            try:
                path.unlink()
                self.stats.evicted += 1
                self._count("evicted")
                total -= size
            except FileNotFoundError:
                total -= size  # a peer pruned it first; same outcome
            except OSError:
                self.stats.io_errors += 1
                self._count("io_error")
        self._disk_total = total

    def _discard_corrupt(self, path: Path) -> None:
        self.stats.corrupt += 1
        self._count("corrupt")
        try:
            if self._disk_total is not None:
                try:
                    self._disk_total -= path.stat().st_size
                except OSError:
                    pass
            path.unlink()
        except FileNotFoundError:
            pass  # a peer process already dropped it; nothing left to discard
        except OSError:
            self.stats.io_errors += 1
            self._count("io_error")

    def _encode_entry(self, digest: str, result: SolveResult) -> dict:
        """The v3 on-disk document: schedule as packed IR columns, not Moves."""
        ir = from_schedule(result.schedule)
        return {
            "format": CACHE_FORMAT_VERSION,
            "digest": digest,
            "problem": result.problem,
            "arrays": pack_arrays(ir),
            "ir_digest": ir_digest(ir),
            "description": ir.description,
            "stats": result.stats,
            "solver": result.solver,
            "exact_solver": bool(result.exact_solver),
            "lower_bound": result.lower_bound,
            "lower_bound_source": result.lower_bound_source,
            "solve_stats": result.solve_stats,
        }

    def _decode_entry(self, problem: PebblingProblem, digest: str, doc: object) -> SolveResult:
        """Rebuild a :class:`SolveResult` from a v3 document, verifying as we go.

        Raises on *anything* suspicious — wrong format version (including
        pre-v3 documents that pickled the whole result), digest or problem
        mismatch, malformed columns, and (when ``validate`` is on) a kernel
        replay whose statistics disagree with the stored ones.  The caller
        converts any raise into corrupt-entry handling.
        """
        if not isinstance(doc, dict):
            raise ValueError("entry payload is not a document")
        if doc.get("format") != CACHE_FORMAT_VERSION or doc.get("digest") != digest:
            raise ValueError("entry does not describe this digest/format")
        stored_problem = doc["problem"]
        if not isinstance(stored_problem, PebblingProblem) or stored_problem != problem:
            raise ValueError("stored problem differs from the requested one")
        op, node, arg = unpack_arrays(doc["arrays"])
        ir = ir_from_arrays(
            problem.game,
            problem.dag,
            problem.r,
            problem.variant,
            op,
            node,
            arg,
            description=str(doc.get("description", "")),
        )
        if ir_digest(ir) != doc.get("ir_digest"):
            raise ValueError("schedule columns do not match the stored digest")
        stats = doc["stats"]
        if not isinstance(stats, ScheduleStats):
            raise ValueError("entry carries no replay statistics")
        if self.validate:
            replayed = kernel_stats(ir)  # raises on an illegal/incomplete schedule
            if replayed != stats:
                raise ValueError("replayed statistics differ from the stored ones")
        return SolveResult(
            problem=problem,
            schedule=to_schedule(ir),
            stats=stats,
            solver=str(doc["solver"]),
            exact_solver=bool(doc["exact_solver"]),
            lower_bound=doc["lower_bound"],
            lower_bound_source=str(doc["lower_bound_source"]),
            solve_stats=doc["solve_stats"],
        )

    def _read_disk(self, problem: PebblingProblem, digest: str) -> Optional[SolveResult]:
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            return None  # plain miss: the entry does not exist (or is unreadable)
        try:
            checksum, payload = blob.split(b"\n", 1)
            if hashlib.sha256(payload).hexdigest().encode("ascii") != checksum:
                raise ValueError("payload checksum mismatch")
            doc = pickle.loads(payload)
            result = self._decode_entry(problem, digest, doc)
            try:
                # Touch-on-read: the LRU prune orders by mtime, so a served
                # entry must register as recently used or capped eviction
                # degrades to FIFO by write time and hot entries die first.
                os.utime(path)
            except OSError:
                pass  # read-only store / vanished file: serving still works
            return result
        except Exception:
            # Truncation, bit flips, stale pickles from an incompatible
            # version (including pre-v3 whole-result pickles), forged
            # entries: all treated identically — drop the entry and let the
            # caller recompute.
            self._discard_corrupt(path)
            return None
