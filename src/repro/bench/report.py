"""Machine-readable BENCH reports: schema-versioned json with env metadata.

The report format is the contract between a benchmark run and everything
downstream of it — the CI artifact, the regression comparator, and any
plotting/tracking tooling.  Backward-incompatible changes must bump
:data:`SCHEMA_VERSION`; :func:`load_report` refuses documents from a
different major schema rather than mis-reading them.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Union

from .runner import ScenarioRecord

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "build_report",
    "environment_metadata",
    "write_report",
    "load_report",
    "report_records",
]

#: Identifies the document family (grep-able in artifact stores).
SCHEMA_NAME = "repro-prbp-bench"

#: Bumped on changes to the record or envelope layout.  Version 2 adds the
#: anytime-refinement trajectory fields (``refine_initial_cost``,
#: ``refine_steps``, ``refine_accepted``, ``refine_time_to_best_s``) to every
#: scenario record.  Version 3 adds the replay-throughput microbenchmark
#: fields (``replay_speedup``, ``replay_schedules_per_s``,
#: ``replay_engine_schedules_per_s``).
SCHEMA_VERSION = 3

#: Versions :func:`load_report` accepts.  Older documents lack the newer
#: additive fields, which every consumer treats as absent/None — keeping
#: them loadable lets ``--compare`` gate a v3 run against a v1/v2 baseline.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)


def environment_metadata() -> Dict[str, object]:
    """Where the numbers came from: interpreter, platform, cpu count, numpy."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover — numpy is a hard dependency today
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "argv": list(sys.argv),
    }


def build_report(
    records: Sequence[ScenarioRecord],
    tier: str,
    repeats: int = 1,
    jobs: int = 1,
    cache: Optional[object] = None,
) -> Dict[str, object]:
    """Assemble the full report document for a finished suite run.

    ``jobs`` and ``cache`` (a :class:`~repro.api.ResultCache`, or ``None``)
    document *how* the numbers were produced; both are additive envelope
    fields, so documents stay readable by schema-version-1 consumers.
    """
    failures = [rec.scenario for rec in records if not rec.ok]
    total_time = sum(rec.wall_time_s or 0.0 for rec in records)
    cache_hits = sum(1 for rec in records if rec.cache_hit)
    now = time.time()
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "created_unix": now,
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        "tier": tier,
        "repeats": repeats,
        "jobs": jobs,
        "cache": None if cache is None else dict(cache.stats.as_dict(), enabled=True),
        "env": environment_metadata(),
        "summary": {
            "scenarios": len(records),
            "failures": len(failures),
            "failed_scenarios": failures,
            "optimal": sum(1 for rec in records if rec.optimal),
            "cache_hits": cache_hits,
            "total_wall_time_s": total_time,
        },
        "scenarios": [rec.to_dict() for rec in records],
    }


def write_report(report: Dict[str, object], path: Union[str, "os.PathLike[str]"]) -> None:
    """Write a report document as pretty-printed json (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: Union[str, "os.PathLike[str]"]) -> Dict[str, object]:
    """Load and validate a BENCH json document.

    Raises
    ------
    ValueError
        If the file is not a BENCH report (wrong ``schema``), comes from an
        incompatible ``schema_version``, or lacks the ``scenarios`` list.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_NAME:
        raise ValueError(
            f"{path}: not a {SCHEMA_NAME} report "
            f"(schema = {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})"
        )
    version = doc.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"{path}: schema_version {version!r} is not supported "
            f"(this build reads versions {SUPPORTED_SCHEMA_VERSIONS})"
        )
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list):
        raise ValueError(f"{path}: malformed report — 'scenarios' must be a list")
    return doc


def report_records(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """The scenario record dicts of a loaded report (empty list if absent)."""
    scenarios = doc.get("scenarios", [])
    return [rec for rec in scenarios if isinstance(rec, dict)]
