"""The built-in scenario registry: every paper workload, declaratively.

One :class:`~repro.bench.scenario.BenchScenario` per measured claim, grouped
by paper anchor.  The ``quick`` tier is sized for CI smoke runs (the whole
suite solves in seconds); the ``full`` tier is sized for real perf tracking
(larger trees, FFTs and mat-vecs, denser random layered DAGs).

Importing this module (done by ``repro.bench.__init__``) populates the
registry; the pytest wrappers under ``benchmarks/`` and the ``python -m
repro.bench`` CLI both read from it, so workload definitions live here and
nowhere else.
"""

from __future__ import annotations

import numpy as np

from ..bounds.analytic import (
    chained_gadget_prbp_optimal_cost,
    matvec_prbp_optimal_cost,
    zipper_prbp_cost_estimate,
    zipper_rbp_cost_estimate,
)
from ..core.dag import ComputationalDAG
from ..core.variants import RECOMPUTE, SLIDING
from ..dags import (
    attention_dag,
    chained_gadget_dag,
    fanin_groups_dag,
    fft_dag,
    figure1_gadget,
    kary_tree_dag,
    matvec_dag,
    pebble_collection_gadget,
    random_layered_dag,
    zipper_gadget,
)
from ..dags.linalg import matmul_dag
from ..dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost
from ..hardness.levels import demo_theorem71_instance
from ..hardness.independent_set import UndirectedGraph
from ..hardness.reduction_thm48 import build_theorem48_instance
from .replay_bench import register_replay_scenarios
from .scenario import BenchScenario, ScenarioTier, register_scenario

__all__ = ["register_builtin_scenarios"]


def _theorem48_dag(n0: int, seed: int, chain_scale: float) -> ComputationalDAG:
    """The Appendix A.4 reduction DAG for a seeded random graph on ``n0`` nodes."""
    rng = np.random.default_rng(seed)
    edges = [(i, j) for i in range(n0) for j in range(i + 1, n0) if rng.random() < 0.5]
    graph = UndirectedGraph.from_edges(n0, edges)
    return build_theorem48_instance(graph, 0, chain_scale=chain_scale).dag


def _theorem71_dag(adapted: bool) -> ComputationalDAG:
    """The two-tower Theorem 7.1 demo construction."""
    return demo_theorem71_instance(adapted=adapted).dag


def _feasible_r(dag: ComputationalDAG) -> int:
    """The smallest generally feasible capacity for greedy pebbling."""
    return dag.max_in_degree + 1


def register_builtin_scenarios() -> None:
    """Populate the registry with every built-in scenario (idempotence is the
    caller's job — ``repro.bench.__init__`` runs this exactly once)."""

    # ------------------------------------------------------------------ #
    # Proposition 4.2 / Figure 1: the paper's opening RBP-vs-PRBP gap
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="fig1-rbp-optimal",
            group="prop4.2",
            title="exhaustive OPT_RBP on the Figure 1 gadget (r=4)",
            dag_factory=figure1_gadget,
            game="rbp",
            tiers={
                "quick": ScenarioTier(dag_args=(), r=4, expected_cost=3),
                "full": ScenarioTier(dag_args=(), r=4, expected_cost=3),
            },
            reference="Prop. 4.2: OPT_RBP = 3",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="fig1-prbp-optimal",
            group="prop4.2",
            title="exhaustive OPT_PRBP on the Figure 1 gadget (r=4)",
            dag_factory=figure1_gadget,
            game="prbp",
            tiers={
                "quick": ScenarioTier(dag_args=(), r=4, expected_cost=2),
                "full": ScenarioTier(dag_args=(), r=4, expected_cost=2),
            },
            reference="Prop. 4.2: OPT_PRBP = 2",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="fig1-appA1-rbp",
            group="prop4.2",
            title="Appendix A.1 hand-written RBP strategy replay",
            dag_factory=figure1_gadget,
            game="rbp",
            solver="figure1",
            tiers={
                "quick": ScenarioTier(dag_args=(), r=4, expected_cost=3),
                "full": ScenarioTier(dag_args=(), r=4, expected_cost=3),
            },
            reference="App. A.1 strategy, cost 3",
        )
    )
    register_scenario(
        BenchScenario(
            name="fig1-appA1-prbp",
            group="prop4.2",
            title="Appendix A.1 hand-written PRBP strategy replay",
            dag_factory=figure1_gadget,
            game="prbp",
            solver="figure1",
            tiers={
                "quick": ScenarioTier(dag_args=(), r=4, expected_cost=2),
                "full": ScenarioTier(dag_args=(), r=4, expected_cost=2),
            },
            reference="App. A.1 strategy, cost 2",
        )
    )

    # ------------------------------------------------------------------ #
    # Proposition 4.3: matrix-vector multiplication
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="matvec-prbp-streaming",
            group="prop4.3",
            title="PRBP column-streaming strategy on mat-vec (r = m + 3)",
            dag_factory=matvec_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(6,), r=9, expected_cost=matvec_prbp_optimal_cost(6)
                ),
                "full": ScenarioTier(
                    dag_args=(24,), r=27, expected_cost=matvec_prbp_optimal_cost(24)
                ),
            },
            reference="Prop. 4.3: OPT_PRBP = m^2 + 2m (trivial cost)",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="matvec-rbp-greedy",
            group="prop4.3",
            title="greedy RBP upper bound on mat-vec (gap vs the Prop. 4.3 bound)",
            dag_factory=matvec_dag,
            game="rbp",
            tiers={
                "quick": ScenarioTier(dag_args=(6,), r=9),
                "full": ScenarioTier(dag_args=(16,), r=19),
            },
            reference="Prop. 4.3: OPT_RBP >= m^2 + 3m - 1",
        )
    )

    # ------------------------------------------------------------------ #
    # Proposition 4.4: the zipper gadget at r = d + 2
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="zipper-prbp",
            group="prop4.4",
            title="two-phase PRBP zipper strategy (~2 I/O per chain node)",
            dag_factory=zipper_gadget,
            game="prbp",
            solver="zipper",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(4, 8), r=6, expected_cost=zipper_prbp_cost_estimate(4, 8)
                ),
                "full": ScenarioTier(
                    dag_args=(6, 32), r=8, expected_cost=zipper_prbp_cost_estimate(6, 32)
                ),
            },
            reference="Prop. 4.4: PRBP pays ~2 I/O per chain node",
        )
    )
    register_scenario(
        BenchScenario(
            name="zipper-rbp",
            group="prop4.4",
            title="alternating-group RBP zipper strategy (d I/O per chain node)",
            dag_factory=zipper_gadget,
            game="rbp",
            solver="zipper",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(4, 8), r=6, expected_cost=zipper_rbp_cost_estimate(4, 8)
                ),
                "full": ScenarioTier(
                    dag_args=(6, 32), r=8, expected_cost=zipper_rbp_cost_estimate(6, 32)
                ),
            },
            reference="Prop. 4.4: RBP pays d I/O per chain node",
        )
    )

    # ------------------------------------------------------------------ #
    # Proposition 4.5 / Appendix A.2: k-ary reduction trees at r = k + 1
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="tree-rbp-critical",
            group="prop4.5",
            title="App. A.2 RBP tree strategy at the critical capacity",
            dag_factory=kary_tree_dag,
            game="rbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(3, 4), r=4, expected_cost=optimal_rbp_tree_cost(3, 4)
                ),
                "full": ScenarioTier(
                    dag_args=(4, 6), r=5, expected_cost=optimal_rbp_tree_cost(4, 6)
                ),
            },
            reference="App. A.2: OPT_RBP = k^d + 2k^(d-1) - 1",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="tree-prbp-critical",
            group="prop4.5",
            title="App. A.2 PRBP tree strategy at the critical capacity",
            dag_factory=kary_tree_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(2, 5), r=3, expected_cost=optimal_prbp_tree_cost(2, 5)
                ),
                "full": ScenarioTier(
                    dag_args=(2, 10), r=3, expected_cost=optimal_prbp_tree_cost(2, 10)
                ),
            },
            reference="App. A.2: OPT_PRBP = k^d + 2k^(d-k) - 1",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="tree-prbp-scaling",
            group="prop4.5",
            title="PRBP tree strategy on deep binary trees (scaling)",
            dag_factory=kary_tree_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(2, 8), r=3, expected_cost=optimal_prbp_tree_cost(2, 8)
                ),
                "full": ScenarioTier(
                    dag_args=(2, 12), r=3, expected_cost=optimal_prbp_tree_cost(2, 12)
                ),
            },
            reference="App. A.2 closed form at depth 8 / 12",
            expect_optimal=True,
        )
    )

    # ------------------------------------------------------------------ #
    # Proposition 4.6: the pebble collection gadget
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="collection-full-pebbles",
            group="prop4.6",
            title="collection gadget with d + 2 pebbles: only the trivial cost",
            dag_factory=pebble_collection_gadget,
            game="prbp",
            tiers={
                "quick": ScenarioTier(dag_args=(3, 18), r=5, expected_cost=4),
                "full": ScenarioTier(dag_args=(4, 60), r=6, expected_cost=5),
            },
            reference="Prop. 4.6: trivial cost d + 1 with d + 2 pebbles",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="collection-restricted-cache",
            group="prop4.6",
            title="collection gadget one pebble short: the l/(2d) penalty",
            dag_factory=pebble_collection_gadget,
            game="prbp",
            tiers={
                "quick": ScenarioTier(dag_args=(3, 18), r=4),
                "full": ScenarioTier(dag_args=(4, 60), r=5),
            },
            reference="Prop. 4.6: >= l/(2d) extra I/O without d + 2 pebbles",
        )
    )

    # ------------------------------------------------------------------ #
    # Proposition 4.7: linear-factor gap on chained Figure 1 gadgets
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="chained-prbp-constant",
            group="prop4.7",
            title="PRBP chain strategy: cost 2 at any length (r = 4)",
            dag_factory=chained_gadget_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(32,), r=4, expected_cost=chained_gadget_prbp_optimal_cost()
                ),
                "full": ScenarioTier(
                    dag_args=(512,), r=4, expected_cost=chained_gadget_prbp_optimal_cost()
                ),
            },
            reference="Prop. 4.7: OPT_PRBP = 2, independent of length",
            expect_optimal=True,
        )
    )
    register_scenario(
        BenchScenario(
            name="chained-rbp-greedy",
            group="prop4.7",
            title="greedy RBP on the chain: linear growth (gap vs Prop. 4.7 bound)",
            dag_factory=chained_gadget_dag,
            game="rbp",
            tiers={
                "quick": ScenarioTier(dag_args=(16,), r=4),
                "full": ScenarioTier(dag_args=(128,), r=4),
            },
            reference="Prop. 4.7: OPT_RBP >= one I/O per gadget copy",
        )
    )

    # ------------------------------------------------------------------ #
    # Theorem 4.8: greedy pebbling of the NP-hardness reduction DAG
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="thm48-reduction-greedy",
            group="thm4.8",
            title="greedy PRBP on the App. A.4 reduction DAG (scaled chains)",
            dag_factory=_theorem48_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=(3,), dag_kwargs={"seed": 21, "chain_scale": 0.02}, r=_feasible_r
                ),
                "full": ScenarioTier(
                    dag_args=(4,), dag_kwargs={"seed": 28, "chain_scale": 0.03}, r=_feasible_r
                ),
            },
            reference="Thm. 4.8 construction (chain_scale keeps it polynomial-small)",
        )
    )

    # ------------------------------------------------------------------ #
    # Lemma 5.4: fan-in groups — S-partitions over-estimate PRBP cost
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="fanin-streaming-prbp",
            group="lemma5.4",
            title="group-streaming PRBP on fan-in groups: constant cost 8 (r = 3)",
            dag_factory=fanin_groups_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(dag_args=(7, 24), r=3, expected_cost=8),
                "full": ScenarioTier(dag_args=(7, 96), r=3, expected_cost=8),
            },
            reference="Lemma 5.4: OPT_PRBP = 8 regardless of group size",
            expect_optimal=True,
        )
    )

    # ------------------------------------------------------------------ #
    # Theorem 6.9: FFT
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="fft-blocked-prbp",
            group="thm6.9",
            title="blocked butterfly PRBP strategy on the FFT DAG",
            dag_factory=fft_dag,
            game="prbp",
            solver="fft-blocked",
            tiers={
                "quick": ScenarioTier(dag_args=(64,), r=8),
                "full": ScenarioTier(dag_args=(512,), r=16),
            },
            reference="Thm. 6.9: Omega(m log m / log r), O(m log m / log r) achieved",
        )
    )
    register_scenario(
        BenchScenario(
            name="fft-blocked-prbp-large-cache",
            group="thm6.9",
            title="blocked FFT strategy with a larger cache (scaling in r)",
            dag_factory=fft_dag,
            game="prbp",
            solver="fft-blocked",
            tiers={
                "quick": ScenarioTier(dag_args=(64,), r=16),
                "full": ScenarioTier(dag_args=(512,), r=64),
            },
            reference="Thm. 6.9: cost shrinks as log r grows",
        )
    )

    # ------------------------------------------------------------------ #
    # Theorem 6.10: matrix multiplication
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="matmul-tiled-prbp",
            group="thm6.10",
            title="outer-product tiled PRBP strategy on matmul",
            dag_factory=matmul_dag,
            game="prbp",
            solver="matmul-tiled",
            tiers={
                "quick": ScenarioTier(dag_args=(6, 6, 6), r=18),
                "full": ScenarioTier(dag_args=(12, 12, 12), r=32),
            },
            reference="Thm. 6.10: Omega(m1 m2 m3 / sqrt(r)), tiled strategy within O(.)",
        )
    )

    # ------------------------------------------------------------------ #
    # Theorem 6.11: attention
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="attention-flash-prbp",
            group="thm6.11",
            title="flash-style row-block PRBP strategy on Q.K^T + exp",
            dag_factory=attention_dag,
            game="prbp",
            solver="attention-flash",
            tiers={
                "quick": ScenarioTier(dag_args=(12, 3, False), r=16),
                "full": ScenarioTier(dag_args=(24, 4, False), r=40),
            },
            reference="Thm. 6.11: two-regime attention bound",
        )
    )

    # ------------------------------------------------------------------ #
    # Theorem 7.1: the inapproximability level gadgets
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="thm71-adapted-greedy",
            group="thm7.1",
            title="greedy PRBP on the adapted two-tower demo construction",
            dag_factory=_theorem71_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(dag_args=(True,), r=_feasible_r),
                "full": ScenarioTier(dag_args=(True,), r=_feasible_r),
            },
            reference="Thm. 7.1 / App. A.5 auxiliary-level adaptation",
        )
    )

    # ------------------------------------------------------------------ #
    # Appendix B: model variants on the Figure 1 gadget
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="fig1-rbp-recompute",
            group="appB",
            title="exhaustive RBP with re-computation: the gap closes",
            dag_factory=figure1_gadget,
            game="rbp",
            variant=RECOMPUTE,
            tiers={
                "quick": ScenarioTier(dag_args=(), r=4, expected_cost=2),
                "full": ScenarioTier(dag_args=(), r=4, expected_cost=2),
            },
            reference="App. B.1: OPT_RBP = 2 with re-computation",
        )
    )
    register_scenario(
        BenchScenario(
            name="fig1-rbp-sliding",
            group="appB",
            title="exhaustive RBP with sliding pebbles: the gap closes",
            dag_factory=figure1_gadget,
            game="rbp",
            variant=SLIDING,
            tiers={
                "quick": ScenarioTier(dag_args=(), r=4, expected_cost=2),
                "full": ScenarioTier(dag_args=(), r=4, expected_cost=2),
            },
            reference="App. B.2: OPT_RBP = 2 with sliding",
        )
    )

    # ------------------------------------------------------------------ #
    # Cross-cutting machinery: greedy + conversion on random layered DAGs
    # at several densities (also the random-DAG scaling scenarios)
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="random-layered-sparse",
            group="machinery",
            title="greedy PRBP on a sparse random layered DAG (p = 0.2)",
            dag_factory=random_layered_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=((6, 8, 8, 6, 4),),
                    dag_kwargs={"edge_probability": 0.2, "max_in_degree": 4, "seed": 0},
                    r=6,
                ),
                "full": ScenarioTier(
                    dag_args=((20, 30, 30, 30, 20, 10),),
                    dag_kwargs={"edge_probability": 0.2, "max_in_degree": 6, "seed": 0},
                    r=8,
                ),
            },
            reference="Sec. 6 machinery over random layered DAGs",
        )
    )
    register_scenario(
        BenchScenario(
            name="random-layered-medium",
            group="machinery",
            title="greedy PRBP on a medium-density random layered DAG (p = 0.35)",
            dag_factory=random_layered_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=((6, 8, 8, 6, 4),),
                    dag_kwargs={"edge_probability": 0.35, "max_in_degree": 4, "seed": 1},
                    r=6,
                ),
                "full": ScenarioTier(
                    dag_args=((20, 30, 30, 30, 20, 10),),
                    dag_kwargs={"edge_probability": 0.35, "max_in_degree": 6, "seed": 1},
                    r=8,
                ),
            },
            reference="Sec. 6 machinery over random layered DAGs",
        )
    )
    register_scenario(
        BenchScenario(
            name="random-layered-dense",
            group="machinery",
            title="greedy PRBP on a dense random layered DAG (p = 0.5)",
            dag_factory=random_layered_dag,
            game="prbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=((6, 8, 8, 6, 4),),
                    dag_kwargs={"edge_probability": 0.5, "max_in_degree": 4, "seed": 2},
                    r=6,
                ),
                "full": ScenarioTier(
                    dag_args=((20, 30, 30, 30, 20, 10),),
                    dag_kwargs={"edge_probability": 0.5, "max_in_degree": 6, "seed": 2},
                    r=8,
                ),
            },
            reference="Sec. 6 machinery over random layered DAGs",
        )
    )
    register_scenario(
        BenchScenario(
            name="random-layered-rbp",
            group="machinery",
            title="greedy RBP on a random layered DAG (Prop. 4.1 comparison side)",
            dag_factory=random_layered_dag,
            game="rbp",
            tiers={
                "quick": ScenarioTier(
                    dag_args=((6, 8, 8, 6, 4),),
                    dag_kwargs={"edge_probability": 0.3, "max_in_degree": 4, "seed": 3},
                    r=6,
                ),
                "full": ScenarioTier(
                    dag_args=((20, 30, 30, 30, 20, 10),),
                    dag_kwargs={"edge_probability": 0.3, "max_in_degree": 6, "seed": 3},
                    r=8,
                ),
            },
            reference="Prop. 4.1: OPT_RBP >= OPT_PRBP on every DAG",
        )
    )

    # ------------------------------------------------------------------ #
    # Anytime refinement (Sections 3 & 8.1): the quality/time dial on the
    # heuristic workloads — seeded, step-budgeted, trajectory-recorded
    # ------------------------------------------------------------------ #
    register_scenario(
        BenchScenario(
            name="anytime-tree-offcritical",
            group="anytime",
            title="anytime refinement of a reduction tree away from its critical capacity",
            dag_factory=kary_tree_dag,
            game="rbp",
            solver="anytime",
            solve_options={"seed": 0, "refine_steps": 384},
            tiers={
                "quick": ScenarioTier(dag_args=(3, 3), r=5),
                "full": ScenarioTier(dag_args=(3, 5), r=7),
            },
            reference="App. A.2 trees off the r = k + 1 regime (no closed form applies)",
        )
    )
    register_scenario(
        BenchScenario(
            name="anytime-fft",
            group="anytime",
            title="anytime refinement of the blocked FFT strategy / greedy seed",
            dag_factory=fft_dag,
            game="prbp",
            solver="anytime",
            solve_options={"seed": 0, "refine_steps": 384},
            tiers={
                "quick": ScenarioTier(dag_args=(16,), r=6),
                "full": ScenarioTier(dag_args=(128,), r=12),
            },
            reference="Thm. 6.9 FFT family between the exact and asymptotic regimes",
        )
    )
    register_scenario(
        BenchScenario(
            name="anytime-random-layered",
            group="anytime",
            title="anytime refinement of greedy PRBP on a random layered DAG",
            dag_factory=random_layered_dag,
            game="prbp",
            solver="anytime",
            solve_options={"seed": 0, "refine_steps": 384},
            tiers={
                "quick": ScenarioTier(
                    dag_args=((6, 8, 8, 6, 4),),
                    dag_kwargs={"edge_probability": 0.3, "max_in_degree": 4, "seed": 5},
                    r=6,
                ),
                "full": ScenarioTier(
                    dag_args=((20, 30, 30, 30, 20, 10),),
                    dag_kwargs={"edge_probability": 0.3, "max_in_degree": 6, "seed": 5},
                    r=8,
                ),
            },
            reference="Sec. 8.1 anytime improvement over the Belady baseline",
        )
    )

    # ------------------------------------------------------------------ #
    # Schedule-IR replay kernel: validation throughput vs the engine
    # ------------------------------------------------------------------ #
    register_replay_scenarios()
