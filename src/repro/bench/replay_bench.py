"""Replay-throughput microbenchmark: engine validation vs the columnar kernel.

The workload is the validation step every untrusting consumer performs on a
schedule it did not compute itself — the service client on a result frame,
the cache on a disk entry, the corpus on an ingested record: decode the wire
payload, rebuild the schedule, replay it, read off the statistics.  Two
implementations race over the *same* deterministic batch of schedules:

* **engine** — the pre-IR path: the protocol-v1 per-move JSON list is turned
  back into ``RBPMove``/``PRBPMove`` objects, wrapped in a schedule
  container, and replayed through ``Schedule.stats()`` (per-move Python
  dispatch);
* **kernel** — the columnar path: the packed base64 columns of
  :mod:`repro.core.schedule_ir` are decoded with :func:`unpack_arrays`,
  validated by :func:`ir_from_arrays`, and replayed through
  :func:`replay_many` (vectorised and batched for RBP, scalar for PRBP),
  with per-schedule move-kind counts read off via ``np.bincount``.

Both sides accumulate the replayed I/O costs; the accumulators must agree,
so the benchmark is also a differential check.  The batch is the greedy/
topological base schedule of the tier's DAG plus seeded adjacent-transposition
variants, pre-filtered (untimed) to the legal-and-terminal ones — every timed
replay does full work, none short-circuits on an early illegal move.

The scenarios are registered with a ``custom_runner`` (see
:class:`~repro.bench.scenario.BenchScenario`), so they travel through the
normal runner, BENCH json reports and the ``--compare`` gate; the kernel-
over-engine ``replay_speedup`` is gated through ``expected_ok`` against the
scenario's ``min_speedup`` option.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Tuple

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.schedule_ir import (
    ScheduleIR,
    from_schedule,
    ir_from_arrays,
    pack_arrays,
    replay_many,
    to_schedule,
    unpack_arrays,
)
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..core.variants import GameVariant
from ..dags.fft import fft_dag
from ..dags.linalg import matvec_dag
from ..solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule
from .runner import ScenarioRecord
from .scenario import BenchScenario, ScenarioTier, register_scenario

__all__ = ["register_replay_scenarios", "run_replay_throughput"]


def _legal_swap_variants(base: ScheduleIR, count: int, seed: int) -> List[ScheduleIR]:
    """``base`` plus seeded adjacent-swap variants, filtered to legal+terminal.

    Roughly a quarter of random adjacent transpositions of a greedy schedule
    stay legal, so the mutation loop over-generates and the kernel (the
    already-differentially-tested one) keeps the survivors.  Deterministic
    for a fixed (base, count, seed).
    """
    rng = random.Random(seed)
    rows = list(zip(base.op.tolist(), base.node.tolist(), base.arg.tolist()))
    keep = [base]
    tries = 0
    while len(keep) < count and tries < count * 30:
        batch = []
        for _ in range(min(4 * (count - len(keep)), 256)):
            tries += 1
            k = rng.randrange(len(rows) - 1)
            mutated = list(rows)
            mutated[k], mutated[k + 1] = mutated[k + 1], mutated[k]
            op, node, arg = (np.array(col, dtype=np.int32) for col in zip(*mutated))
            batch.append(
                ir_from_arrays(base.game, base.dag, base.r, base.variant, op, node, arg)
            )
        outcomes = replay_many(batch, masks=False)
        keep.extend(ir for ir, out in zip(batch, outcomes) if out.ok)
    return keep[:count]


def _engine_wire_doc(ir: ScheduleIR) -> List[List[object]]:
    """The protocol-v1 per-move JSON shape of a schedule (the engine input)."""
    schedule = to_schedule(ir)
    items: List[List[object]] = []
    if ir.game == "rbp":
        for mv in schedule.moves:
            if mv.kind is MoveKind.COMPUTE and mv.slide_from is not None:
                items.append([mv.kind.value, mv.node, mv.slide_from])
            else:
                items.append([mv.kind.value, mv.node])
    else:
        for mv in schedule.moves:
            if mv.kind is MoveKind.COMPUTE:
                assert mv.edge is not None
                items.append([mv.kind.value, mv.edge[0], mv.edge[1]])
            else:
                items.append([mv.kind.value, mv.node])
    return items


def _engine_validate(
    game: str,
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant,
    docs: List[List[List[object]]],
) -> int:
    """Decode + engine-replay every wire move list; returns the summed I/O."""
    total = 0
    for items in docs:
        if game == "rbp":
            rbp_moves = [
                RBPMove(MoveKind(item[0]), int(item[1]), int(item[2]) if len(item) == 3 else None)
                for item in items
            ]
            total += RBPSchedule(dag, r, rbp_moves, variant=variant).stats().io_cost
        else:
            prbp_moves = [
                PRBPMove(MoveKind(item[0]), edge=(int(item[1]), int(item[2])))
                if item[0] == MoveKind.COMPUTE.value
                else PRBPMove(MoveKind(item[0]), node=int(item[1]))
                for item in items
            ]
            total += PRBPSchedule(dag, r, prbp_moves, variant=variant).stats().io_cost
    return total


def _kernel_validate(
    game: str,
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant,
    docs: List[Dict[str, object]],
) -> int:
    """Decode + kernel-replay every packed-column doc; returns the summed I/O."""
    irs = []
    for doc in docs:
        op, node, arg = unpack_arrays(doc)
        irs.append(ir_from_arrays(game, dag, r, variant, op, node, arg))
    total = 0
    for ir, out in zip(irs, replay_many(irs, masks=False)):
        if not out.ok:
            raise RuntimeError("a pre-filtered replay-bench schedule failed to replay")
        np.bincount(ir.op, minlength=5)  # the per-kind counts stats() reports
        total += out.io_cost
    return total


def _timed(fn, *args) -> Tuple[float, int]:
    start = time.perf_counter()
    value = fn(*args)
    return time.perf_counter() - start, value


def run_replay_throughput(
    scenario: BenchScenario, tier: str, repeats: int
) -> ScenarioRecord:
    """The ``custom_runner`` behind the replay-throughput scenarios.

    Builds the tier's schedule batch, races the engine and kernel validation
    paths over it (``repeats`` interleaved pairs, floored at 5; the reported
    speedup is the ratio of best-of times, taken from adjacent windows so
    co-tenant load cannot skew one side), and reports the speedup.  The run
    fails its expectation (``expected_ok=False``, which the ``--compare``
    gate turns into a regression) when the speedup drops below the
    scenario's ``min_speedup`` option.
    """
    spec = scenario.tier(tier)
    options = dict(scenario.solve_options)
    schedule_count = int(options.get("schedule_count", 40))  # type: ignore[arg-type]
    min_speedup = float(options.get("min_speedup", 1.0))  # type: ignore[arg-type]
    seed = int(options.get("seed", 0))  # type: ignore[arg-type]

    dag = scenario.dag_factory(*spec.dag_args, **dict(spec.dag_kwargs))
    r = spec.capacity(dag)
    if scenario.game == "rbp":
        base = from_schedule(greedy_rbp_schedule(dag, r, variant=scenario.variant))
    else:
        base = from_schedule(topological_prbp_schedule(dag, r, variant=scenario.variant))
    irs = _legal_swap_variants(base, schedule_count, seed=seed)

    # both wire forms are produced untimed: the race starts at "bytes in hand"
    kernel_docs = [pack_arrays(ir) for ir in irs]
    engine_docs = [_engine_wire_doc(ir) for ir in irs]

    # The two sides are timed back-to-back inside each repeat (so their best
    # observations come from adjacent time windows) and the speedup is the
    # ratio of the best times — the classic timeit doctrine: the minimum is
    # the measurement, everything above it is the OS and co-tenants.
    inner_repeats = max(5, repeats)
    engine_s = kernel_s = float("inf")
    for _ in range(inner_repeats):
        pair_engine_s, engine_total = _timed(
            _engine_validate, scenario.game, dag, r, scenario.variant, engine_docs
        )
        pair_kernel_s, kernel_total = _timed(
            _kernel_validate, scenario.game, dag, r, scenario.variant, kernel_docs
        )
        if engine_total != kernel_total:
            raise RuntimeError(
                f"engine and kernel disagree on the batch I/O total "
                f"({engine_total} vs {kernel_total})"
            )
        engine_s = min(engine_s, pair_engine_s)
        kernel_s = min(kernel_s, pair_kernel_s)

    speedup = engine_s / kernel_s if kernel_s > 0 else float("inf")
    return ScenarioRecord(
        scenario=scenario.name,
        group=scenario.group,
        tier=tier,
        game=scenario.game,
        variant=scenario.variant.describe(),
        solver_requested=scenario.solver,
        solver_used="replay-kernel",
        reference=scenario.reference,
        n=dag.n,
        m=dag.m,
        r=r,
        wall_time_s=kernel_s,
        io_cost=int(kernel_total),  # deterministic batch => sharply comparable
        moves=sum(len(ir) for ir in irs),
        expected_ok=speedup >= min_speedup,
        replay_speedup=speedup,
        replay_schedules_per_s=len(irs) / kernel_s if kernel_s > 0 else None,
        replay_engine_schedules_per_s=len(irs) / engine_s if engine_s > 0 else None,
    )


def register_replay_scenarios() -> None:
    """Register the replay-throughput scenarios (called with the built-ins)."""
    register_scenario(
        BenchScenario(
            name="replay-throughput",
            group="schedule-ir",
            title="batched columnar kernel vs engine replay on RBP wire schedules",
            dag_factory=matvec_dag,
            game="rbp",
            solver="replay-kernel",
            # recorded speedup is ~10-13x on an idle box; the gate floor sits
            # at 8x so that co-tenant timer noise cannot fail CI while a real
            # regression (losing the batched path drops this to ~2x) still does
            solve_options={"schedule_count": 40, "min_speedup": 8.0, "seed": 0},
            tiers={
                "quick": ScenarioTier(dag_args=(18,), r=21),
                "full": ScenarioTier(dag_args=(24,), r=27),
            },
            reference="schedule-IR replay kernel: >= 10x validation throughput recorded",
            custom_runner=run_replay_throughput,
        )
    )
    register_scenario(
        BenchScenario(
            name="replay-throughput-prbp-scalar",
            group="schedule-ir",
            title="scalar columnar kernel vs engine replay on PRBP wire schedules",
            dag_factory=fft_dag,
            game="prbp",
            solver="replay-kernel",
            solve_options={"schedule_count": 32, "min_speedup": 1.5, "seed": 0},
            tiers={
                "quick": ScenarioTier(dag_args=(32,), r=6),
                "full": ScenarioTier(dag_args=(128,), r=12),
            },
            reference="schedule-IR replay kernel: scalar PRBP path stays ahead of the engine",
            custom_runner=run_replay_throughput,
        )
    )
