"""The baseline comparator: the regression gate behind ``--compare``.

Given the current report and a baseline report, flags

* **wall-time regressions** — a scenario slower than ``threshold`` times its
  baseline (both sides floored at ``min_wall_time_s`` so sub-millisecond
  timer noise cannot fail a build);
* **I/O-cost regressions** — any achieved cost above the baseline's.  Costs
  are deterministic replays of deterministic schedules, so *any* increase is
  a real algorithmic regression and no threshold applies;
* **new failures** — a scenario that errored or missed its expected cost now
  but was healthy in the baseline;
* **missing scenarios** — present in the baseline but absent from the
  current run (a silently dropped workload must not look like a pass).

Improvements (faster, cheaper) are reported informationally and never fail.

The comparator is tolerant of the schema-2 additions: it reads only the
fields both versions share (``io_cost``, ``wall_time_s``, ``error``,
``expected_ok``), so a version-2 run gates cleanly against a version-1
baseline whose records lack the ``refine_*`` trajectory fields — refined
costs simply show up as ordinary ``io_cost`` improvements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .report import report_records

__all__ = ["Regression", "ComparisonResult", "compare_reports", "DEFAULT_THRESHOLD"]

#: Default wall-time ratio above which a scenario counts as regressed.
DEFAULT_THRESHOLD = 1.25

#: Wall times below this floor are treated as equal (timer noise).
DEFAULT_MIN_WALL_TIME_S = 0.02


@dataclass(frozen=True)
class Regression:
    """One flagged difference between the current run and the baseline."""

    scenario: str
    tier: str
    kind: str  # "wall-time" | "io-cost" | "failure" | "missing"
    message: str
    current: Optional[float] = None
    baseline: Optional[float] = None


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_reports`.

    ``ok`` is True iff no regression was found; ``improvements`` and
    ``skipped`` carry informational notes (never failures).
    """

    threshold: float
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        """Multi-line human-readable summary (one line per finding)."""
        lines = []
        for reg in self.regressions:
            lines.append(f"REGRESSION [{reg.kind}] {reg.scenario} ({reg.tier}): {reg.message}")
        for note in self.improvements:
            lines.append(f"improved: {note}")
        for note in self.skipped:
            lines.append(f"skipped: {note}")
        if not lines:
            lines.append("no differences against the baseline")
        return "\n".join(lines)


def _index(doc: Dict[str, object]) -> Dict[Tuple[str, str], Dict[str, object]]:
    return {
        (str(rec.get("scenario")), str(rec.get("tier"))): rec
        for rec in report_records(doc)
    }


def _is_healthy(rec: Dict[str, object]) -> bool:
    return rec.get("error") is None and rec.get("expected_ok") is not False


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    min_wall_time_s: float = DEFAULT_MIN_WALL_TIME_S,
) -> ComparisonResult:
    """Compare two loaded BENCH report documents; see the module docstring."""
    if threshold < 1.0:
        raise ValueError(f"threshold must be >= 1.0, got {threshold}")
    result = ComparisonResult(threshold=threshold)
    current_index = _index(current)
    baseline_index = _index(baseline)

    for key, base_rec in sorted(baseline_index.items()):
        name, tier = key
        cur_rec = current_index.get(key)
        if cur_rec is None:
            result.regressions.append(
                Regression(
                    scenario=name,
                    tier=tier,
                    kind="missing",
                    message="present in the baseline but absent from the current run",
                )
            )
            continue

        if not _is_healthy(base_rec):
            # A scenario that was already broken at the baseline cannot
            # regress further; it only gates again once a healthy baseline
            # records it.
            result.skipped.append(f"{name} ({tier}): baseline run was already failing")
            continue
        if not _is_healthy(cur_rec):
            detail = cur_rec.get("error") or (
                f"expected cost {cur_rec.get('expected_cost')}, got {cur_rec.get('io_cost')}"
            )
            result.regressions.append(
                Regression(
                    scenario=name, tier=tier, kind="failure", message=str(detail)
                )
            )
            continue

        cur_cost, base_cost = cur_rec.get("io_cost"), base_rec.get("io_cost")
        if isinstance(cur_cost, int) and isinstance(base_cost, int):
            if cur_cost > base_cost:
                result.regressions.append(
                    Regression(
                        scenario=name,
                        tier=tier,
                        kind="io-cost",
                        message=f"I/O cost rose from {base_cost} to {cur_cost}",
                        current=float(cur_cost),
                        baseline=float(base_cost),
                    )
                )
            elif cur_cost < base_cost:
                result.improvements.append(
                    f"{name} ({tier}): I/O cost fell from {base_cost} to {cur_cost}"
                )

        cur_time, base_time = cur_rec.get("wall_time_s"), base_rec.get("wall_time_s")
        if isinstance(cur_time, (int, float)) and isinstance(base_time, (int, float)):
            effective_cur = max(float(cur_time), min_wall_time_s)
            effective_base = max(float(base_time), min_wall_time_s)
            ratio = effective_cur / effective_base
            if ratio > threshold:
                result.regressions.append(
                    Regression(
                        scenario=name,
                        tier=tier,
                        kind="wall-time",
                        message=(
                            f"wall time {cur_time:.4f}s vs baseline {base_time:.4f}s "
                            f"({ratio:.2f}x > threshold {threshold:.2f}x)"
                        ),
                        current=float(cur_time),
                        baseline=float(base_time),
                    )
                )
            elif ratio < 1.0 / threshold:
                result.improvements.append(
                    f"{name} ({tier}): wall time {cur_time:.4f}s vs baseline "
                    f"{base_time:.4f}s ({ratio:.2f}x)"
                )

    for key in sorted(set(current_index) - set(baseline_index)):
        result.skipped.append(f"{key[0]} ({key[1]}): new scenario, no baseline to compare")
    return result
