"""Drive registry scenarios through the :mod:`repro.api` solvers and record results.

The runner is the single measurement path of the bench subsystem: the CLI
(``python -m repro.bench``), the CI smoke job and the pytest-benchmark
wrappers under ``benchmarks/`` all call :func:`run_scenario` /
:func:`run_suite`, so every consumer sees the same numbers for the same
workload.

Two execution modes share the record-building code:

* **serial** (``jobs <= 1``) — one scenario at a time, timed around the
  ``solve()`` call exactly as before;
* **parallel** (``jobs > 1``) — the whole suite is posed as one
  :func:`repro.api.solve_many` batch; per-scenario wall time then comes from
  ``SolveResult.solve_stats`` (measured inside the winning solver, in the
  worker that ran it), so the numbers stay comparable across modes.

Either mode can consult a :class:`~repro.api.ResultCache`.  A cache hit is
flagged on the record (``cache_hit``) and reports the *stored* solve time —
the wall time of the run that actually computed the result — so a cached
suite keeps historically meaningful timings instead of near-zero lookups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..api import ResultCache, problem_digest, solve, solve_many_detailed
from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from .scenario import BenchScenario, get_scenario, iter_scenarios

__all__ = ["ScenarioRecord", "run_scenario", "run_suite"]


@dataclass(frozen=True)
class ScenarioRecord:
    """One scenario run, flattened into the fields the BENCH json carries.

    ``wall_time_s`` is the minimum over ``repeats`` timed ``solve()`` calls
    (the DAG is built once, outside the timed region); for a cache hit it is
    the stored solve time of the run that produced the entry.  ``cache_hit``
    is ``None`` when no cache was in play.  ``expected_ok`` is ``None`` when
    the scenario declares no expectation, else whether the achieved cost
    matched the closed form (and, for ``expect_optimal`` scenarios, whether
    optimality was proven).  A record with ``error`` set carries ``None`` in
    every measurement field.
    """

    scenario: str
    group: str
    tier: str
    game: str
    variant: str
    solver_requested: str
    reference: str
    n: Optional[int] = None
    m: Optional[int] = None
    r: Optional[int] = None
    wall_time_s: Optional[float] = None
    io_cost: Optional[int] = None
    lower_bound: Optional[int] = None
    lower_bound_source: str = ""
    gap: Optional[int] = None
    optimal: Optional[bool] = None
    solver_used: Optional[str] = None
    expected_cost: Optional[int] = None
    expected_ok: Optional[bool] = None
    states_expanded: Optional[int] = None
    states_frontier_peak: Optional[int] = None
    peak_red: Optional[int] = None
    moves: Optional[int] = None
    cache_hit: Optional[bool] = None
    #: anytime-refinement trajectory (schema v2): cost the refinement pass
    #: started from, mutation attempts spent/accepted, and seconds until the
    #: final best schedule was first reached; all None when the winning
    #: solver never entered the refinement engine.
    refine_initial_cost: Optional[int] = None
    refine_steps: Optional[int] = None
    refine_accepted: Optional[int] = None
    refine_time_to_best_s: Optional[float] = None
    #: replay-throughput microbenchmark fields (schema v3): kernel-over-engine
    #: schedule-validation speedup and the two absolute throughputs; all None
    #: for ordinary solve scenarios.
    replay_speedup: Optional[float] = None
    replay_schedules_per_s: Optional[float] = None
    replay_engine_schedules_per_s: Optional[float] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff the run finished and met every declared expectation."""
        return self.error is None and self.expected_ok is not False

    def to_dict(self) -> Dict[str, object]:
        """The record as the plain dict stored in the BENCH json."""
        return {
            "scenario": self.scenario,
            "group": self.group,
            "tier": self.tier,
            "game": self.game,
            "variant": self.variant,
            "solver_requested": self.solver_requested,
            "solver_used": self.solver_used,
            "reference": self.reference,
            "n": self.n,
            "m": self.m,
            "r": self.r,
            "wall_time_s": self.wall_time_s,
            "io_cost": self.io_cost,
            "lower_bound": self.lower_bound,
            "lower_bound_source": self.lower_bound_source,
            "gap": self.gap,
            "optimal": self.optimal,
            "expected_cost": self.expected_cost,
            "expected_ok": self.expected_ok,
            "states_expanded": self.states_expanded,
            "states_frontier_peak": self.states_frontier_peak,
            "peak_red": self.peak_red,
            "moves": self.moves,
            "cache_hit": self.cache_hit,
            "refine_initial_cost": self.refine_initial_cost,
            "refine_steps": self.refine_steps,
            "refine_accepted": self.refine_accepted,
            "refine_time_to_best_s": self.refine_time_to_best_s,
            "replay_speedup": self.replay_speedup,
            "replay_schedules_per_s": self.replay_schedules_per_s,
            "replay_engine_schedules_per_s": self.replay_engine_schedules_per_s,
            "error": self.error,
        }


def _base_fields(scenario: BenchScenario, tier: str) -> Dict[str, object]:
    spec = scenario.tier(tier)  # raises KeyError on an unknown tier, by design
    return dict(
        scenario=scenario.name,
        group=scenario.group,
        tier=tier,
        game=scenario.game,
        variant=scenario.variant.describe(),
        solver_requested=scenario.solver,
        reference=scenario.reference,
        expected_cost=spec.expected_cost,
    )


def _finish_record(
    scenario: BenchScenario,
    base: Dict[str, object],
    problem: PebblingProblem,
    result: SolveResult,
    wall_time: Optional[float],
    cache_hit: Optional[bool],
) -> ScenarioRecord:
    expected_ok: Optional[bool] = None
    if base["expected_cost"] is not None:
        expected_ok = result.cost == base["expected_cost"]
    if scenario.expect_optimal:
        expected_ok = (expected_ok is not False) and result.optimal

    solve_stats = result.solve_stats
    trajectory = solve_stats.refinement if solve_stats else None
    return ScenarioRecord(
        n=problem.n,
        m=problem.dag.m,
        r=problem.r,
        wall_time_s=wall_time,
        io_cost=result.cost,
        lower_bound=result.lower_bound,
        lower_bound_source=result.lower_bound_source,
        gap=result.gap,
        optimal=result.optimal,
        solver_used=result.solver,
        expected_ok=expected_ok,
        states_expanded=solve_stats.states_expanded if solve_stats else None,
        states_frontier_peak=solve_stats.states_frontier_peak if solve_stats else None,
        peak_red=result.stats.peak_red,
        moves=result.stats.moves,
        cache_hit=cache_hit,
        refine_initial_cost=trajectory.initial_cost if trajectory else None,
        refine_steps=trajectory.steps if trajectory else None,
        refine_accepted=trajectory.accepted if trajectory else None,
        refine_time_to_best_s=trajectory.time_to_best_s if trajectory else None,
        **base,
    )


def _stored_wall_time(result: SolveResult) -> Optional[float]:
    return result.solve_stats.wall_time_s if result.solve_stats is not None else None


def run_scenario(
    scenario: Union[str, BenchScenario],
    tier: str = "quick",
    repeats: int = 1,
    cache: Optional[ResultCache] = None,
) -> ScenarioRecord:
    """Run one scenario at one tier and return its :class:`ScenarioRecord`.

    Never raises for a failing *workload* — solver errors, infeasible
    capacities and expectation mismatches are reported in the record, so a
    broken scenario cannot take down the rest of a suite run.  Registry
    misuse (an unknown scenario or tier name) still raises ``KeyError``.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    base = _base_fields(scenario, tier)
    if scenario.custom_runner is not None:
        # measurement scenarios (e.g. replay throughput) own their whole
        # run; they never touch the result cache — there is no solve result
        # to store — and report through the same record type
        try:
            record = scenario.custom_runner(scenario, tier, max(1, repeats))
        except Exception as exc:  # noqa: BLE001 — a broken bench is a record, not a crash
            return ScenarioRecord(error=f"custom runner failed: {exc}", **base)
        if not isinstance(record, ScenarioRecord):
            return ScenarioRecord(
                error=f"custom runner returned {type(record).__name__}, not a ScenarioRecord",
                **base,
            )
        return record
    try:
        problem = scenario.build_problem(tier)
    except Exception as exc:  # noqa: BLE001 — a bad factory is a scenario error
        return ScenarioRecord(error=f"building the problem failed: {exc}", **base)

    digest: Optional[str] = None
    if cache is not None:
        digest = problem_digest(
            problem, solver=scenario.solver, options=dict(scenario.solve_options)
        )
        hit = cache.get(problem, digest)
        if hit is not None:
            return _finish_record(
                scenario, base, problem, hit, _stored_wall_time(hit), cache_hit=True
            )

    best_time: Optional[float] = None
    result = None
    try:
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            attempt = solve(problem, solver=scenario.solver, **dict(scenario.solve_options))
            elapsed = time.perf_counter() - start
            if best_time is None or elapsed < best_time:
                # keep the result of the fastest repeat, matching the
                # min-of-N policy of the parallel path — it is also what a
                # cache hit will later report as the stored solve time
                best_time, result = elapsed, attempt
    except Exception as exc:  # noqa: BLE001 — solver failures become records too
        return ScenarioRecord(
            n=problem.n,
            m=problem.dag.m,
            r=problem.r,
            error=f"solve() failed: {exc}",
            **base,
        )

    if cache is not None:
        cache.put(digest, result)
    return _finish_record(
        scenario, base, problem, result, best_time, cache_hit=False if cache is not None else None
    )


def run_suite(
    tier: str = "quick",
    groups: Optional[Iterable[str]] = None,
    names: Optional[Iterable[str]] = None,
    repeats: int = 1,
    progress: Optional[Callable[[ScenarioRecord], None]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[ScenarioRecord]:
    """Run every matching registry scenario and return the records in order.

    ``names`` selects specific scenarios (validated eagerly so a typo fails
    fast instead of silently shrinking the suite); ``groups`` filters by
    paper anchor; both together intersect.  ``progress`` is invoked with
    each finished record (the CLI uses it for live output).  ``jobs > 1``
    solves the whole suite as one :func:`repro.api.solve_many` batch over
    worker processes — scenario costs are identical to a serial run, and
    record order still follows the registry.
    """
    if names is not None:
        wanted = [get_scenario(name) for name in names]
        group_filter = set(groups) if groups is not None else None
        scenarios = [
            s for s in wanted if group_filter is None or s.group in group_filter
        ]
    else:
        scenarios = iter_scenarios(groups=groups)

    if jobs is None or jobs <= 1:
        records = []
        for scenario in scenarios:
            record = run_scenario(scenario, tier=tier, repeats=repeats, cache=cache)
            if progress is not None:
                progress(record)
            records.append(record)
        return records
    return _run_suite_parallel(scenarios, tier, repeats, progress, jobs, cache)


def _run_suite_parallel(
    scenarios: List[BenchScenario],
    tier: str,
    repeats: int,
    progress: Optional[Callable[[ScenarioRecord], None]],
    jobs: int,
    cache: Optional[ResultCache],
) -> List[ScenarioRecord]:
    records: List[Optional[ScenarioRecord]] = [None] * len(scenarios)
    bases: List[Dict[str, object]] = [_base_fields(s, tier) for s in scenarios]

    solvable: List[int] = []
    custom: List[int] = []
    problems: List[PebblingProblem] = []
    for i, scenario in enumerate(scenarios):
        if scenario.custom_runner is not None:
            # custom measurements (microbenchmarks) are deferred until the
            # worker pool has drained: timing them while the pool's workers
            # churn through the other scenarios would measure contention,
            # not the code.  Record order still follows the registry.
            custom.append(i)
            continue
        try:
            problems.append(scenario.build_problem(tier))
            solvable.append(i)
        except Exception as exc:  # noqa: BLE001 — a bad factory is a scenario error
            records[i] = ScenarioRecord(error=f"building the problem failed: {exc}", **bases[i])

    outcomes, info = solve_many_detailed(
        problems,
        solver=[scenarios[i].solver for i in solvable],
        per_problem_options=[dict(scenarios[i].solve_options) for i in solvable],
        jobs=jobs,
        cache=cache,
        repeats=repeats,
        return_exceptions=True,
    )
    for pos, i in enumerate(solvable):
        outcome = outcomes[pos]
        if isinstance(outcome, SolveResult):
            cache_hit = info.cache_hits[pos] if cache is not None else None
            records[i] = _finish_record(
                scenarios[i],
                bases[i],
                problems[pos],
                outcome,
                _stored_wall_time(outcome),
                cache_hit,
            )
        else:
            records[i] = ScenarioRecord(
                n=problems[pos].n,
                m=problems[pos].dag.m,
                r=problems[pos].r,
                error=f"solve() failed: {outcome}",
                **bases[i],
            )
    for i in custom:
        records[i] = run_scenario(scenarios[i], tier=tier, repeats=repeats)
    if progress is not None:
        for record in records:
            progress(record)
    return list(records)
