"""repro.bench — the performance subsystem: scenarios, runner, reports, gate.

The paper's claims are quantitative, so the repo tracks them quantitatively:

* a declarative **scenario registry** (:mod:`repro.bench.scenarios`) defines
  every measured workload once, at ``quick`` and ``full`` size tiers;
* the **runner** (:mod:`repro.bench.runner`) drives each scenario through
  :func:`repro.api.solve` and records wall time, achieved I/O cost, the best
  known lower bound and its gap, and the exhaustive search's state counters;
* the **reporter** (:mod:`repro.bench.report`) writes schema-versioned
  ``BENCH_repro.json`` documents with environment metadata;
* the **comparator** (:mod:`repro.bench.compare`) gates a run against a
  baseline report and flags wall-time and I/O-cost regressions.

Command line::

    python -m repro.bench --quick --output BENCH_repro.json
    python -m repro.bench --quick --compare BASELINE.json --threshold 1.25

The pytest-benchmark wrappers under ``benchmarks/`` parametrize over this
registry, so the paper-proposition grouping of the benchmark files survives
while the workload definitions live here.
"""

from .compare import (
    DEFAULT_THRESHOLD,
    ComparisonResult,
    Regression,
    compare_reports,
)
from .report import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    build_report,
    environment_metadata,
    load_report,
    report_records,
    write_report,
)
from .runner import ScenarioRecord, run_scenario, run_suite
from .scenario import (
    TIERS,
    BenchScenario,
    ScenarioTier,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_groups,
    scenario_names,
    unregister_scenario,
)
from .scenarios import register_builtin_scenarios

# Populate the registry exactly once, at import time: every consumer
# (the CLI, CI, the pytest wrappers, tests) sees the same scenario set.
register_builtin_scenarios()

__all__ = [
    "BenchScenario",
    "ScenarioTier",
    "TIERS",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "iter_scenarios",
    "scenario_names",
    "scenario_groups",
    "register_builtin_scenarios",
    "ScenarioRecord",
    "run_scenario",
    "run_suite",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "build_report",
    "environment_metadata",
    "write_report",
    "load_report",
    "report_records",
    "Regression",
    "ComparisonResult",
    "compare_reports",
    "DEFAULT_THRESHOLD",
]
