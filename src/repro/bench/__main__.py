"""``python -m repro.bench`` — run the benchmark suite and gate on baselines.

Exit codes:

* ``0`` — every selected scenario ran and met its expectations (and, with
  ``--compare``, no regression against the baseline);
* ``1`` — at least one scenario errored or missed its expected cost;
* ``2`` — the baseline comparison found a regression.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.reporting import format_table
from ..api import ResultCache, default_cache_dir
from .compare import DEFAULT_THRESHOLD, compare_reports
from .report import build_report, load_report, report_records, write_report
from .runner import ScenarioRecord, run_suite
from .scenario import iter_scenarios, scenario_groups

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the repro-prbp benchmark scenarios and gate on regressions.",
    )
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument(
        "--quick",
        dest="tier",
        action="store_const",
        const="quick",
        help="run the quick (CI smoke) size tier [default]",
    )
    tier.add_argument(
        "--full",
        dest="tier",
        action="store_const",
        const="full",
        help="run the full (perf tracking) size tier",
    )
    tier.add_argument(
        "--tier",
        dest="tier",
        choices=("quick", "full"),
        help="select the size tier by name (same effect as --quick / --full)",
    )
    parser.set_defaults(tier="quick")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="solve scenarios over N worker processes via solve_many [default: 1, serial]",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache (hits are flagged in records)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache directory [default: $REPRO_CACHE_DIR or ~/.cache/repro-prbp]",
    )
    parser.add_argument(
        "--group",
        action="append",
        metavar="GROUP",
        help="only run scenarios of this paper anchor (repeatable; see --list)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="only run this scenario (repeatable; see --list)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="timed solve() calls per scenario; the minimum wall time is recorded",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the BENCH json report to PATH",
    )
    parser.add_argument(
        "--input",
        metavar="PATH",
        help="load an existing BENCH json instead of running (for --compare)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="compare the run (or --input report) against a baseline BENCH json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="X",
        help=f"wall-time regression ratio for --compare [default: {DEFAULT_THRESHOLD}]",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered scenarios (with groups and tier sizes) and exit; "
        "respects --group / --scenario / --corpus",
    )
    corpus = parser.add_argument_group(
        "corpus sampling",
        "sample scenarios from a repro-corpus store (SQLite or JSONL) into the "
        "'corpus' group; without an explicit --group/--scenario the run is "
        "restricted to that group",
    )
    corpus.add_argument(
        "--corpus",
        metavar="PATH",
        help="corpus file to sample bench scenarios from",
    )
    corpus.add_argument(
        "--corpus-sample",
        type=int,
        default=8,
        metavar="K",
        help="instances sampled from the corpus [default: 8]",
    )
    corpus.add_argument(
        "--corpus-seed",
        type=int,
        default=0,
        metavar="N",
        help="deterministic sampling seed [default: 0]",
    )
    corpus.add_argument(
        "--corpus-must",
        action="append",
        default=[],
        metavar="EXPR",
        help="corpus filter that has to hold, e.g. 'n<=32' (repeatable)",
    )
    corpus.add_argument(
        "--corpus-should",
        action="append",
        default=[],
        metavar="EXPR",
        help="corpus filter of which at least --corpus-min-should have to hold",
    )
    corpus.add_argument(
        "--corpus-must-not",
        action="append",
        default=[],
        metavar="EXPR",
        help="corpus filter that has to fail (repeatable)",
    )
    corpus.add_argument("--corpus-min-should", type=int, default=1, metavar="N")
    corpus.add_argument(
        "--corpus-solver",
        default="auto",
        metavar="NAME",
        help="solver dispatched on sampled instances [default: auto]",
    )
    return parser


def _describe_tier(spec) -> str:
    """Positional args plus any keyword args (seeds etc.) of a tier's factory call."""
    parts = [repr(arg) for arg in spec.dag_args]
    parts += [f"{key}={value!r}" for key, value in spec.dag_kwargs.items()]
    return f"({', '.join(parts)})"


def _list_scenarios(
    groups: Optional[List[str]] = None, names: Optional[List[str]] = None
) -> None:
    wanted = set(names) if names else None
    rows = []
    for scenario in iter_scenarios(groups=groups):
        if wanted is not None and scenario.name not in wanted:
            continue
        quick, full = scenario.tier("quick"), scenario.tier("full")
        rows.append(
            [
                scenario.group,
                scenario.name,
                scenario.game,
                scenario.solver,
                _describe_tier(quick),
                _describe_tier(full),
            ]
        )
    filters = ""
    if groups or names:
        parts = []
        if groups:
            parts.append(f"groups={','.join(groups)}")
        if names:
            parts.append(f"scenarios={','.join(names)}")
        filters = f" matching {' '.join(parts)}"
    print(
        format_table(
            ["group", "scenario", "game", "solver", "quick args", "full args"],
            rows,
            title=(
                f"registered scenarios ({len(rows)}){filters} — "
                f"groups: {', '.join(scenario_groups())}"
            ),
        )
    )


def _print_records(records: List[ScenarioRecord]) -> None:
    rows = []
    for rec in records:
        if rec.error is not None:
            rows.append([rec.scenario, rec.tier, rec.solver_used or "-", "-", "-", "-", "-", "ERROR"])
            continue
        status = "ok" if rec.ok else "EXPECTATION FAILED"
        rows.append(
            [
                rec.scenario,
                rec.tier,
                rec.solver_used,
                f"{rec.wall_time_s:.4f}s",
                rec.io_cost,
                rec.lower_bound if rec.lower_bound is not None else "-",
                rec.gap if rec.gap is not None else "-",
                status,
            ]
        )
    print(
        format_table(
            ["scenario", "tier", "solver", "wall time", "I/O cost", "lower bound", "gap", "status"],
            rows,
        )
    )
    for rec in records:
        if rec.error is not None:
            print(f"ERROR {rec.scenario}: {rec.error}", file=sys.stderr)


def _register_corpus(args: argparse.Namespace) -> int:
    """Sample ``--corpus`` into registered scenarios; returns how many."""
    from ..corpus import register_corpus_scenarios

    scenarios = register_corpus_scenarios(
        args.corpus,
        sample=args.corpus_sample,
        seed=args.corpus_seed,
        must=args.corpus_must,
        should=args.corpus_should,
        must_not=args.corpus_must_not,
        min_should=args.corpus_min_should,
        solver=args.corpus_solver,
    )
    return len(scenarios)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.corpus is not None:
        try:
            registered = _register_corpus(args)
        except Exception as exc:  # corpus errors are user input errors here
            print(f"error: cannot sample corpus {args.corpus}: {exc}", file=sys.stderr)
            return 1
        print(f"sampled {registered} corpus scenario(s) from {args.corpus}")
        if args.group is None and args.scenario is None and not args.list:
            # A corpus run measures the sample unless told otherwise.
            args.group = ["corpus"]

    if args.list:
        _list_scenarios(groups=args.group, names=args.scenario)
        return 0

    if args.input is not None:
        current_doc = load_report(args.input)
        records: List[ScenarioRecord] = []
        healthy = all(
            rec.get("error") is None and rec.get("expected_ok") is not False
            for rec in report_records(current_doc)
        )
        print(
            f"loaded {len(report_records(current_doc))} scenario records "
            f"from {args.input} (tier: {current_doc.get('tier')})"
        )
    else:
        cache = None
        if not args.no_cache:
            if args.compare is not None:
                # A regression gate must measure *this* build: a cache hit
                # would report the stored wall time of whatever run populated
                # the entry and hide a fresh slowdown from the comparator.
                print("note: --compare measures fresh solves; the result cache is disabled")
            else:
                cache = ResultCache(directory=args.cache_dir or default_cache_dir())
        records = run_suite(
            tier=args.tier,
            groups=args.group,
            names=args.scenario,
            repeats=args.repeats,
            jobs=args.jobs,
            cache=cache,
        )
        if not records:
            print("no scenarios matched the given filters", file=sys.stderr)
            return 1
        _print_records(records)
        current_doc = build_report(
            records, tier=args.tier, repeats=args.repeats, jobs=args.jobs, cache=cache
        )
        healthy = all(rec.ok for rec in records)
        summary = current_doc["summary"]
        cache_note = ""
        if cache is not None:
            stats = cache.stats
            corrupt = f", {stats.corrupt} corrupt entries recomputed" if stats.corrupt else ""
            cache_note = f" (cache: {stats.hits} hits, {stats.stores} stores{corrupt})"
        print(
            f"\n{summary['scenarios']} scenarios, {summary['failures']} failures, "
            f"total solve time {summary['total_wall_time_s']:.2f}s{cache_note}"
        )

    if args.output is not None:
        write_report(current_doc, args.output)
        print(f"wrote {args.output}")

    if args.compare is not None:
        baseline_doc = load_report(args.compare)
        comparison = compare_reports(current_doc, baseline_doc, threshold=args.threshold)
        print()
        print(comparison.describe())
        if not comparison.ok:
            return 2

    return 0 if healthy else 1


if __name__ == "__main__":
    sys.exit(main())
