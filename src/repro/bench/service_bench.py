"""Service-mode benchmark: throughput and tail latency of the solve daemon.

The scenario registry measures *solves*; this module measures the *service*
around them — what :mod:`repro.service` adds (framing, admission, worker
hand-off, shared-cache lookups) and what it amortises (a warm cache across
clients).  One in-process :class:`~repro.service.SolveService` is driven by
``clients`` concurrent TCP clients, each walking the same mixed quick-tier
workload in a rotated order (so distinct problems are in flight at once and
the in-flight dedup path is exercised, not just the cache).  Every request's
wall-clock latency is recorded client-side, then summarised as requests/s
and p50/p90/p99.

Two phases per run make the cache's contribution visible instead of
averaged away:

* **cold** — the service starts with an empty cache; every distinct problem
  is solved once, repeats within the phase hit the warming cache;
* **warm** — the same workload again; every request should be a cache
  answer, so this phase is a pure protocol + lookup measurement.

Numbers are wall-clock on whatever host runs them and are **not** gated by
the ``--compare`` regression machinery — the scenario registry's
deterministic costs are the gate; this report is for tracking.  Run it as
``python -m repro.bench.service_bench`` (see ``--help``).

**Open-loop mode** (``--open-loop``) is the cluster load harness: instead
of ``clients`` synchronised walkers (a *closed* loop, whose offered rate
collapses whenever the service slows down — hiding exactly the overload
behaviour worth measuring), requests arrive on a seeded Poisson process at
``--rate`` req/s whether or not earlier ones finished.  Latency is
measured from each request's *scheduled* arrival, so scheduler lag counts
against the service, not for it (no coordinated omission).  The workload
is sampled per-request from the scenario mix or — with ``--corpus`` — from
a corpus JSONL via the store's deterministic sampler.  ``--cluster N``
boots a full in-process cluster (one digest-routing
:class:`~repro.service.router.SolveRouter` over N backends); the report
then carries the router's shard/cache/failover counters.  The SLO document
(p50/p99/p99.9 latency, goodput, shed rate, exact outcome accounting) can
be gated against a committed baseline with ``--compare`` (exit 2 on
regression), which is what CI does with ``benchmarks/SERVICE_BASELINE.json``.
For in-process topologies the report also carries an ``attribution``
section splitting server-side time into queue wait vs. solve execution
(merged from every backend's metrics registry), so a latency regression
can be blamed on admission backlog or on the solves themselves.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.problem import PebblingProblem
from .report import environment_metadata
from .scenario import materialize_scenario

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "SERVICE_SLO_SCHEMA",
    "DEFAULT_WORKLOAD",
    "RequestSample",
    "OpenLoopSample",
    "run_service_benchmark",
    "run_open_loop_benchmark",
    "compare_slo",
    "main",
]

#: Document identifier of the json this module writes.
SERVICE_BENCH_SCHEMA = "repro-prbp-service-bench"

#: Document identifier of the open-loop SLO report.
SERVICE_SLO_SCHEMA = "repro-prbp-service-slo"

#: Error codes that mean "deliberately turned away" rather than "broken".
SHED_CODES = frozenset({"rate-limited", "overloaded", "queue-full", "client-saturated"})

#: Mixed quick-tier workload: both games, both cheap and non-trivial solves,
#: auto-dispatch and specialised solvers — the traffic shape the admission
#: queue and the shared cache exist for.
DEFAULT_WORKLOAD: Tuple[str, ...] = (
    "tree-prbp-critical",
    "tree-rbp-critical",
    "chained-prbp-constant",
    "chained-rbp-greedy",
    "fft-blocked-prbp",
    "matvec-rbp-greedy",
)


@dataclass(frozen=True)
class RequestSample:
    """One client-observed request: which scenario, how long, cache or solve."""

    scenario: str
    phase: str  # "cold" | "warm"
    client: int
    latency_s: float
    cache_hit: bool


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _summarise(samples: List[RequestSample], wall_s: float) -> Dict[str, Any]:
    latencies = sorted(sample.latency_s for sample in samples)
    return {
        "requests": len(samples),
        "wall_s": wall_s,
        "requests_per_s": (len(samples) / wall_s) if wall_s > 0 else 0.0,
        "cache_hits": sum(1 for sample in samples if sample.cache_hit),
        "latency_s": {
            "mean": statistics.fmean(latencies) if latencies else 0.0,
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }


def _materialise_workload(
    names: Sequence[str], tier: str
) -> List[Tuple[str, PebblingProblem, str, Dict[str, Any]]]:
    return [(name, *materialize_scenario(name, tier)) for name in names]


async def _client_pass(
    host: str,
    port: int,
    client_index: int,
    workload: Sequence[Tuple[str, PebblingProblem, str, Dict[str, Any]]],
    phase: str,
    samples: List[RequestSample],
) -> None:
    """One client walks the whole workload once, rotated by its own index.

    The rotation staggers which problem each client requests at any moment:
    with it, the cold phase sees genuinely mixed traffic (and concurrent
    duplicates that exercise in-flight dedup) instead of ``clients`` copies
    of the same request marching in lockstep.
    """
    from ..service.client import ServiceClient

    offset = client_index % len(workload)
    rotated = list(workload[offset:]) + list(workload[:offset])
    async with await ServiceClient.connect(host, port) as client:
        for name, problem, solver, options in rotated:
            start = time.perf_counter()
            _result, meta = await client.solve_detailed(problem, solver, **options)
            samples.append(
                RequestSample(
                    scenario=name,
                    phase=phase,
                    client=client_index,
                    latency_s=time.perf_counter() - start,
                    cache_hit=bool(meta["cache_hit"]),
                )
            )


async def _run(
    clients: int,
    repeats: int,
    tier: str,
    names: Sequence[str],
    workers: int,
    prefer_processes: bool,
) -> Dict[str, Any]:
    from ..service.server import ServiceConfig, SolveService

    workload = _materialise_workload(names, tier)
    config = ServiceConfig(port=0, workers=workers, prefer_processes=prefer_processes)
    service = SolveService(config)
    await service.start()
    host, port = service.address
    samples: List[RequestSample] = []
    phases: Dict[str, Any] = {}
    try:
        for phase in ("cold", "warm"):
            phase_samples: List[RequestSample] = []
            started = time.perf_counter()
            for _ in range(max(1, repeats)):
                await asyncio.gather(
                    *(
                        _client_pass(host, port, index, workload, phase, phase_samples)
                        for index in range(clients)
                    )
                )
            phases[phase] = _summarise(phase_samples, time.perf_counter() - started)
            samples.extend(phase_samples)
        server_stats = service.stats()
    finally:
        await service.shutdown(drain=True)

    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "schema_version": 1,
        "tier": tier,
        "clients": clients,
        "repeats": repeats,
        "workers": workers,
        "pool_mode": server_stats["pool"]["mode"],
        "workload": list(names),
        "phases": phases,
        "server": {
            "cache_answers": server_stats["jobs"]["cache_answers"],
            "dedup_shared": server_stats["jobs"]["dedup_shared"],
            "admitted": server_stats["jobs"]["admitted"],
            "completed": server_stats["jobs"]["completed"],
        },
        "env": environment_metadata(),
        "samples": [
            {
                "scenario": sample.scenario,
                "phase": sample.phase,
                "client": sample.client,
                "latency_s": sample.latency_s,
                "cache_hit": sample.cache_hit,
            }
            for sample in samples
        ],
    }


def run_service_benchmark(
    clients: int = 4,
    repeats: int = 1,
    tier: str = "quick",
    scenarios: Optional[Sequence[str]] = None,
    workers: int = 2,
    prefer_processes: bool = True,
) -> Dict[str, Any]:
    """Run the service benchmark and return its report document.

    ``clients`` concurrent connections each issue the mixed workload
    ``repeats`` times per phase; see the module docstring for the two-phase
    (cold cache / warm cache) design.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    return asyncio.run(
        _run(
            clients=clients,
            repeats=repeats,
            tier=tier,
            names=tuple(scenarios) if scenarios else DEFAULT_WORKLOAD,
            workers=workers,
            prefer_processes=prefer_processes,
        )
    )


def _print_report(doc: Dict[str, Any]) -> None:
    print(
        f"service bench: {doc['clients']} clients x {len(doc['workload'])} scenarios "
        f"x {doc['repeats']} repeat(s), pool mode {doc['pool_mode']}"
    )
    for phase in ("cold", "warm"):
        summary = doc["phases"][phase]
        lat = summary["latency_s"]
        print(
            f"  {phase:>4}: {summary['requests']:4d} requests in {summary['wall_s']:.3f}s "
            f"({summary['requests_per_s']:8.1f} req/s)  "
            f"p50 {lat['p50'] * 1000:7.2f} ms  p90 {lat['p90'] * 1000:7.2f} ms  "
            f"p99 {lat['p99'] * 1000:7.2f} ms  ({summary['cache_hits']} cache hits)"
        )
    server = doc["server"]
    print(
        f"  server: {server['admitted']} admitted, {server['completed']} solved, "
        f"{server['cache_answers']} cache answers, {server['dedup_shared']} dedup-shared"
    )


# --------------------------------------------------------------------------- #
# open-loop load harness
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OpenLoopSample:
    """One open-loop request: when it was due, how it ended, how long it took.

    ``latency_s`` is measured from the request's *scheduled* arrival time,
    so time lost to a lagging dispatcher or a saturated connection pool is
    charged to the system under test (the open-loop discipline).
    """

    label: str
    scheduled_s: float
    latency_s: float
    outcome: str  # "ok" | "shed" | "failed"
    code: Optional[str]
    cache_hit: bool
    backend: Optional[str]


def _corpus_workload(
    path: str, sample: int, must: Sequence[str], seed: int
) -> List[Tuple[str, PebblingProblem, str, Dict[str, Any]]]:
    """Deterministically sample ``sample`` corpus instances as workload items."""
    from ..corpus.store import CorpusStore

    with CorpusStore.from_file(path) as store:
        instances = store.sample(sample, seed=seed, must=list(must) or None)
        if not instances:
            raise ValueError(f"corpus {path!r} has no instances matching {list(must)!r}")
        return [
            (f"corpus:{instance.digest[:10]}", instance.problem(), "auto", {})
            for instance in instances
        ]


class _ConnectionPool:
    """Grow-on-demand client pool with a hard cap (the open-loop fuse).

    At the cap, a request is *not* queued — waiting would close the loop —
    it is counted as shed with ``client-saturated``.  Typed service errors
    leave a connection reusable; transport errors discard it.
    """

    def __init__(self, host: str, port: int, limit: int) -> None:
        self.host = host
        self.port = port
        self.limit = limit
        self.free: List[Any] = []
        self.open_count = 0

    async def acquire(self) -> Optional[Any]:
        from ..service.client import ServiceClient

        while self.free:
            client = self.free.pop()
            return client
        if self.open_count >= self.limit:
            return None
        self.open_count += 1
        try:
            return await ServiceClient.connect(self.host, self.port)
        except OSError:
            self.open_count -= 1
            raise

    def release(self, client: Any) -> None:
        self.free.append(client)

    async def discard(self, client: Any) -> None:
        self.open_count -= 1
        await client.close()

    async def close(self) -> None:
        while self.free:
            client = self.free.pop()
            self.open_count -= 1
            await client.close()


async def _fire_one(
    pool: _ConnectionPool,
    label: str,
    problem: PebblingProblem,
    solver: str,
    options: Dict[str, Any],
    scheduled_s: float,
    started_at: float,
    samples: List[OpenLoopSample],
    client_id: str,
) -> None:
    from ..service.client import ServiceError
    from ..service.protocol import ProtocolError

    loop = asyncio.get_running_loop()
    due = started_at + scheduled_s

    def record(outcome: str, code: Optional[str], cache_hit: bool, backend: Optional[str]) -> None:
        samples.append(
            OpenLoopSample(
                label=label,
                scheduled_s=scheduled_s,
                latency_s=loop.time() - due,
                outcome=outcome,
                code=code,
                cache_hit=cache_hit,
                backend=backend,
            )
        )

    try:
        client = await pool.acquire()
    except OSError:
        record("failed", "connect", False, None)
        return
    if client is None:
        record("shed", "client-saturated", False, None)
        return
    try:
        _result, meta = await client.solve_detailed(
            problem, solver, client_id=client_id, **options
        )
        record("ok", None, bool(meta["cache_hit"]), meta.get("backend"))
        pool.release(client)
    except ServiceError as exc:
        record("shed" if exc.code in SHED_CODES else "failed", exc.code, False, None)
        pool.release(client)  # typed errors leave the connection in sync
    except (ConnectionError, ProtocolError, OSError, asyncio.IncompleteReadError) as exc:
        record("failed", type(exc).__name__, False, None)
        await pool.discard(client)


async def _run_open_loop(
    host: str,
    port: int,
    workload: Sequence[Tuple[str, PebblingProblem, str, Dict[str, Any]]],
    requests: int,
    rate: float,
    seed: int,
    max_connections: int,
    client_id: str,
) -> Tuple[List[OpenLoopSample], float]:
    """Drive the open-loop schedule against ``host:port``; returns samples + wall."""
    import random

    rng = random.Random(seed)
    schedule: List[Tuple[float, int]] = []
    clock = 0.0
    for _ in range(requests):
        clock += rng.expovariate(rate)
        schedule.append((clock, rng.randrange(len(workload))))

    pool = _ConnectionPool(host, port, max_connections)
    samples: List[OpenLoopSample] = []
    loop = asyncio.get_running_loop()
    started_at = loop.time()
    tasks: List["asyncio.Task[None]"] = []
    for scheduled_s, pick in schedule:
        delay = started_at + scheduled_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        label, problem, solver, options = workload[pick]
        tasks.append(
            asyncio.create_task(
                _fire_one(
                    pool,
                    label,
                    problem,
                    solver,
                    options,
                    scheduled_s,
                    started_at,
                    samples,
                    client_id,
                )
            )
        )
    if tasks:
        await asyncio.gather(*tasks)
    wall_s = loop.time() - started_at
    await pool.close()
    return samples, wall_s


def _merged_histogram(
    snapshots: Sequence[Dict[str, Any]], name: str
) -> Optional[Dict[str, float]]:
    """Bucket-exact merge of one histogram family across backend registries.

    Every node uses the same default bucket layout; a series with a
    different layout is skipped rather than mis-merged.
    """
    from ..obs.metrics import iter_histogram_series, summarise_buckets

    bounds: Optional[Tuple[float, ...]] = None
    counts: List[int] = []
    total_sum = 0.0
    for snapshot in snapshots:
        for series in iter_histogram_series(snapshot, name):
            series_bounds = tuple(float(b) for b, _ in series["buckets"][:-1])
            series_counts = [int(c) for _, c in series["buckets"]]
            if bounds is None:
                bounds = series_bounds
                counts = [0] * len(series_counts)
            elif series_bounds != bounds:
                continue
            for i, c in enumerate(series_counts):
                counts[i] += c
            total_sum += float(series["sum"])
    if bounds is None or sum(counts) == 0:
        return None
    return summarise_buckets(bounds, counts, total_sum)


def _summarise_open_loop(
    samples: List[OpenLoopSample],
    wall_s: float,
    requests: int,
    rate: float,
    seed: int,
    workload_labels: Sequence[str],
    cluster: Dict[str, Any],
    router_stats: Optional[Dict[str, Any]],
    attribution: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    ok = [sample for sample in samples if sample.outcome == "ok"]
    shed = [sample for sample in samples if sample.outcome == "shed"]
    failed = [sample for sample in samples if sample.outcome == "failed"]
    latencies = sorted(sample.latency_s for sample in ok)
    by_code: Dict[str, int] = {}
    for sample in samples:
        if sample.code is not None:
            by_code[sample.code] = by_code.get(sample.code, 0) + 1
    doc: Dict[str, Any] = {
        "schema": SERVICE_SLO_SCHEMA,
        "schema_version": 1,
        "mode": "open-loop",
        "requests": requests,
        "rate_per_s": rate,
        "seed": seed,
        "workload": list(workload_labels),
        "cluster": cluster,
        "wall_s": wall_s,
        "offered_per_s": (len(samples) / wall_s) if wall_s > 0 else 0.0,
        "outcomes": {"ok": len(ok), "shed": len(shed), "failed": len(failed)},
        "accounting_exact": len(ok) + len(shed) + len(failed) == requests,
        "ok_fraction": (len(ok) / requests) if requests else 0.0,
        "shed_rate": (len(shed) / requests) if requests else 0.0,
        "goodput_per_s": (len(ok) / wall_s) if wall_s > 0 else 0.0,
        "cache_hits": sum(1 for sample in ok if sample.cache_hit),
        "latency_s": {
            "mean": statistics.fmean(latencies) if latencies else 0.0,
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "p999": _percentile(latencies, 0.999),
            "max": latencies[-1] if latencies else 0.0,
        },
        "by_code": by_code,
        "env": environment_metadata(),
    }
    if attribution is not None:
        doc["attribution"] = attribution
    if router_stats is not None:
        doc["router"] = {
            "routing": router_stats["routing"],
            "shed": router_stats["shed"],
            "hot_cache": router_stats["hot_cache"],
            "backends": [
                {key: backend[key] for key in ("name", "alive", "dispatched", "probe_hits")}
                for backend in router_stats["backends"]
            ],
        }
    return doc


async def _open_loop_session(
    workload: Sequence[Tuple[str, PebblingProblem, str, Dict[str, Any]]],
    requests: int,
    rate: float,
    seed: int,
    cluster: int,
    workers: int,
    prefer_processes: bool,
    max_connections: int,
    rate_limit: Optional[float],
    connect: Optional[Tuple[str, int]],
) -> Dict[str, Any]:
    """Boot the target topology (unless ``connect``), drive the load, report."""
    from ..service.router import BackendSpec, RouterConfig, SolveRouter
    from ..service.server import ServiceConfig, SolveService

    backends: List[SolveService] = []
    router: Optional[SolveRouter] = None
    try:
        if connect is not None:
            host, port = connect
            cluster_doc: Dict[str, Any] = {"mode": "external", "target": f"{host}:{port}"}
        elif cluster > 0:
            for _ in range(cluster):
                service = SolveService(
                    ServiceConfig(port=0, workers=workers, prefer_processes=prefer_processes)
                )
                await service.start()
                backends.append(service)
            router = SolveRouter(
                RouterConfig(
                    backends=tuple(BackendSpec(*service.address) for service in backends),
                    rate_limit_per_s=rate_limit,
                )
            )
            await router.start()
            host, port = router.address
            cluster_doc = {"mode": "router", "backends": cluster, "workers": workers}
        else:
            service = SolveService(
                ServiceConfig(port=0, workers=workers, prefer_processes=prefer_processes)
            )
            await service.start()
            backends.append(service)
            host, port = service.address
            cluster_doc = {"mode": "single", "backends": 1, "workers": workers}

        samples, wall_s = await _run_open_loop(
            host,
            port,
            workload,
            requests,
            rate,
            seed,
            max_connections,
            client_id=f"bench-{seed}",
        )
        router_stats = router.stats() if router is not None else None
        backend_snapshots = [service.metrics.snapshot() for service in backends]
    finally:
        if router is not None:
            await router.shutdown()
        for service in backends:
            await service.shutdown(drain=False)

    attribution: Optional[Dict[str, Any]] = None
    if backend_snapshots:
        attribution = {
            "queue_wait_s": _merged_histogram(backend_snapshots, "repro_queue_wait_seconds"),
            "solve_s": _merged_histogram(backend_snapshots, "repro_solve_seconds"),
            "request_s": _merged_histogram(
                backend_snapshots, "repro_request_latency_seconds"
            ),
        }
    return _summarise_open_loop(
        samples,
        wall_s,
        requests,
        rate,
        seed,
        [label for label, _, _, _ in workload],
        cluster_doc,
        router_stats,
        attribution,
    )


def run_open_loop_benchmark(
    requests: int = 1000,
    rate: float = 200.0,
    seed: int = 0,
    cluster: int = 0,
    tier: str = "quick",
    scenarios: Optional[Sequence[str]] = None,
    corpus: Optional[str] = None,
    corpus_sample: int = 8,
    corpus_must: Sequence[str] = (),
    workers: int = 2,
    prefer_processes: bool = True,
    max_connections: int = 256,
    rate_limit: Optional[float] = None,
    connect: Optional[Tuple[str, int]] = None,
) -> Dict[str, Any]:
    """Run the open-loop SLO benchmark and return its report document."""
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0 req/s, got {rate}")
    if corpus is not None:
        workload = _corpus_workload(corpus, corpus_sample, corpus_must, seed)
    else:
        workload = _materialise_workload(
            tuple(scenarios) if scenarios else DEFAULT_WORKLOAD, tier
        )
    return asyncio.run(
        _open_loop_session(
            workload,
            requests,
            rate,
            seed,
            cluster,
            workers,
            prefer_processes,
            max_connections,
            rate_limit,
            connect,
        )
    )


def compare_slo(doc: Dict[str, Any], baseline: Dict[str, Any], threshold: float) -> List[str]:
    """Regressions of ``doc`` against ``baseline``; empty list = pass.

    Sharp gates (no threshold): every request accounted for exactly once,
    and zero *failed* outcomes — shedding under load is policy, failures
    are bugs.  Thresholded gates: the served fraction may not fall below
    ``baseline/threshold`` and p99 latency may not exceed
    ``baseline*threshold`` (``threshold`` ≥ 1; larger = laxer, same
    convention as the scenario registry's ``--compare``).
    """
    if threshold < 1.0:
        raise ValueError(f"threshold must be >= 1.0, got {threshold}")
    problems: List[str] = []
    if not doc.get("accounting_exact", False):
        outcomes = doc.get("outcomes", {})
        problems.append(
            f"accounting is not exact: {outcomes} does not partition {doc.get('requests')} requests"
        )
    failed = int(doc.get("outcomes", {}).get("failed", 0))
    if failed > 0:
        problems.append(f"{failed} request(s) failed outright (by_code={doc.get('by_code')})")
    ok_fraction = float(doc.get("ok_fraction", 0.0))
    base_ok = float(baseline.get("ok_fraction", 0.0))
    if ok_fraction * threshold < base_ok:
        problems.append(
            f"ok_fraction regressed: {ok_fraction:.4f} vs baseline {base_ok:.4f} "
            f"(threshold x{threshold})"
        )
    p99 = float(doc.get("latency_s", {}).get("p99", 0.0))
    base_p99 = float(baseline.get("latency_s", {}).get("p99", 0.0))
    if base_p99 > 0 and p99 > base_p99 * threshold:
        problems.append(
            f"p99 latency regressed: {p99 * 1000:.2f} ms vs baseline "
            f"{base_p99 * 1000:.2f} ms (threshold x{threshold})"
        )
    return problems


def _print_slo_report(doc: Dict[str, Any]) -> None:
    lat = doc["latency_s"]
    outcomes = doc["outcomes"]
    print(
        f"open-loop SLO: {doc['requests']} requests offered at {doc['rate_per_s']:.0f}/s "
        f"(seed {doc['seed']}, {doc['cluster']['mode']} topology)"
    )
    print(
        f"  outcomes: {outcomes['ok']} ok, {outcomes['shed']} shed, {outcomes['failed']} failed "
        f"(accounting {'exact' if doc['accounting_exact'] else 'BROKEN'})"
    )
    print(
        f"  goodput {doc['goodput_per_s']:.1f}/s  ok {100 * doc['ok_fraction']:.2f}%  "
        f"shed {100 * doc['shed_rate']:.2f}%  cache hits {doc['cache_hits']}"
    )
    print(
        f"  latency: p50 {lat['p50'] * 1000:7.2f} ms  p90 {lat['p90'] * 1000:7.2f} ms  "
        f"p99 {lat['p99'] * 1000:7.2f} ms  p99.9 {lat['p999'] * 1000:7.2f} ms  "
        f"max {lat['max'] * 1000:7.2f} ms"
    )
    if doc.get("by_code"):
        print(f"  by code: {doc['by_code']}")
    if doc.get("attribution"):
        parts = []
        for key, label in (
            ("queue_wait_s", "queue wait"),
            ("solve_s", "solve"),
            ("request_s", "request"),
        ):
            entry = doc["attribution"].get(key)
            if entry:
                parts.append(
                    f"{label} p50 {entry['p50'] * 1000:.2f} ms / "
                    f"p99 {entry['p99'] * 1000:.2f} ms (n={int(entry['count'])})"
                )
        if parts:
            print("  attribution: " + "; ".join(parts))
    if "router" in doc:
        routing = doc["router"]["routing"]
        print(
            f"  router: {routing['dispatched']} dispatched, {routing['hot_hits']} hot hits, "
            f"{routing['primary_probe_hits']} primary + {routing['peer_fetch_hits']} peer "
            f"cache hits, {routing['failovers']} failovers"
        )


def _parse_connect(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: --connect needs HOST:PORT, got {text!r}")
    return host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.service_bench",
        description="Measure request throughput and tail latency of the solve service.",
    )
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="workload passes per phase per client",
    )
    parser.add_argument("--tier", choices=("quick", "full"), default="quick")
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help=f"override the workload (repeatable) [default: {', '.join(DEFAULT_WORKLOAD)}]",
    )
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--no-processes", action="store_true", help="force the thread worker path")
    parser.add_argument("--output", metavar="PATH", help="write the report json to PATH")

    open_loop = parser.add_argument_group("open-loop SLO mode")
    open_loop.add_argument(
        "--open-loop", action="store_true", help="Poisson-arrival load harness instead of phases"
    )
    open_loop.add_argument("--requests", type=int, default=1000, metavar="N")
    open_loop.add_argument(
        "--rate", type=float, default=200.0, metavar="R", help="offered load in requests/s"
    )
    open_loop.add_argument("--seed", type=int, default=0, metavar="S")
    open_loop.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help="boot a router over N in-process backends (0 = single node)",
    )
    open_loop.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="drive an already-running service/router instead of booting one",
    )
    open_loop.add_argument(
        "--corpus", metavar="PATH", help="sample the workload from a corpus JSONL"
    )
    open_loop.add_argument("--corpus-sample", type=int, default=8, metavar="K")
    open_loop.add_argument(
        "--corpus-must", action="append", default=[], metavar="EXPR", help="corpus filter"
    )
    open_loop.add_argument("--max-connections", type=int, default=256, metavar="N")
    open_loop.add_argument(
        "--router-rate-limit",
        type=float,
        default=None,
        metavar="R",
        help="per-client token-bucket limit on the booted router",
    )
    open_loop.add_argument(
        "--compare", metavar="BASELINE", help="gate the SLO report against a baseline json"
    )
    open_loop.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        metavar="X",
        help="laxness multiplier for --compare gates (>= 1.0)",
    )
    args = parser.parse_args(argv)

    if args.open_loop:
        doc = run_open_loop_benchmark(
            requests=args.requests,
            rate=args.rate,
            seed=args.seed,
            cluster=args.cluster,
            tier=args.tier,
            scenarios=args.scenario,
            corpus=args.corpus,
            corpus_sample=args.corpus_sample,
            corpus_must=args.corpus_must,
            workers=args.workers,
            prefer_processes=not args.no_processes,
            max_connections=args.max_connections,
            rate_limit=args.router_rate_limit,
            connect=_parse_connect(args.connect) if args.connect else None,
        )
        _print_slo_report(doc)
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.output}")
        if args.compare is not None:
            with open(args.compare, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
            problems = compare_slo(doc, baseline, args.threshold)
            if problems:
                for problem in problems:
                    print(f"SLO REGRESSION: {problem}", file=sys.stderr)
                return 2
            print(f"SLO gates passed against {args.compare} (threshold x{args.threshold})")
        elif not doc["accounting_exact"] or doc["outcomes"]["failed"]:
            # even without a baseline, a run that lost or broke requests fails
            print("open-loop run had failed or unaccounted requests", file=sys.stderr)
            return 1
        return 0

    doc = run_service_benchmark(
        clients=args.clients,
        repeats=args.repeats,
        tier=args.tier,
        scenarios=args.scenario,
        workers=args.workers,
        prefer_processes=not args.no_processes,
    )
    _print_report(doc)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")

    warm = doc["phases"]["warm"]
    # The warm phase re-requests already-solved problems through a shared
    # cache; zero hits there means the service's whole point is broken.
    if warm["cache_hits"] == 0:
        print("service bench: warm phase saw no cache hits", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
