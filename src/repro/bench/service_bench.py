"""Service-mode benchmark: throughput and tail latency of the solve daemon.

The scenario registry measures *solves*; this module measures the *service*
around them — what :mod:`repro.service` adds (framing, admission, worker
hand-off, shared-cache lookups) and what it amortises (a warm cache across
clients).  One in-process :class:`~repro.service.SolveService` is driven by
``clients`` concurrent TCP clients, each walking the same mixed quick-tier
workload in a rotated order (so distinct problems are in flight at once and
the in-flight dedup path is exercised, not just the cache).  Every request's
wall-clock latency is recorded client-side, then summarised as requests/s
and p50/p90/p99.

Two phases per run make the cache's contribution visible instead of
averaged away:

* **cold** — the service starts with an empty cache; every distinct problem
  is solved once, repeats within the phase hit the warming cache;
* **warm** — the same workload again; every request should be a cache
  answer, so this phase is a pure protocol + lookup measurement.

Numbers are wall-clock on whatever host runs them and are **not** gated by
the ``--compare`` regression machinery — the scenario registry's
deterministic costs are the gate; this report is for tracking.  Run it as
``python -m repro.bench.service_bench`` (see ``--help``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.problem import PebblingProblem
from .report import environment_metadata
from .scenario import materialize_scenario

__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "DEFAULT_WORKLOAD",
    "RequestSample",
    "run_service_benchmark",
    "main",
]

#: Document identifier of the json this module writes.
SERVICE_BENCH_SCHEMA = "repro-prbp-service-bench"

#: Mixed quick-tier workload: both games, both cheap and non-trivial solves,
#: auto-dispatch and specialised solvers — the traffic shape the admission
#: queue and the shared cache exist for.
DEFAULT_WORKLOAD: Tuple[str, ...] = (
    "tree-prbp-critical",
    "tree-rbp-critical",
    "chained-prbp-constant",
    "chained-rbp-greedy",
    "fft-blocked-prbp",
    "matvec-rbp-greedy",
)


@dataclass(frozen=True)
class RequestSample:
    """One client-observed request: which scenario, how long, cache or solve."""

    scenario: str
    phase: str  # "cold" | "warm"
    client: int
    latency_s: float
    cache_hit: bool


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (empty -> 0.0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _summarise(samples: List[RequestSample], wall_s: float) -> Dict[str, Any]:
    latencies = sorted(sample.latency_s for sample in samples)
    return {
        "requests": len(samples),
        "wall_s": wall_s,
        "requests_per_s": (len(samples) / wall_s) if wall_s > 0 else 0.0,
        "cache_hits": sum(1 for sample in samples if sample.cache_hit),
        "latency_s": {
            "mean": statistics.fmean(latencies) if latencies else 0.0,
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }


def _materialise_workload(
    names: Sequence[str], tier: str
) -> List[Tuple[str, PebblingProblem, str, Dict[str, Any]]]:
    return [(name, *materialize_scenario(name, tier)) for name in names]


async def _client_pass(
    host: str,
    port: int,
    client_index: int,
    workload: Sequence[Tuple[str, PebblingProblem, str, Dict[str, Any]]],
    phase: str,
    samples: List[RequestSample],
) -> None:
    """One client walks the whole workload once, rotated by its own index.

    The rotation staggers which problem each client requests at any moment:
    with it, the cold phase sees genuinely mixed traffic (and concurrent
    duplicates that exercise in-flight dedup) instead of ``clients`` copies
    of the same request marching in lockstep.
    """
    from ..service.client import ServiceClient

    offset = client_index % len(workload)
    rotated = list(workload[offset:]) + list(workload[:offset])
    async with await ServiceClient.connect(host, port) as client:
        for name, problem, solver, options in rotated:
            start = time.perf_counter()
            _result, meta = await client.solve_detailed(problem, solver, **options)
            samples.append(
                RequestSample(
                    scenario=name,
                    phase=phase,
                    client=client_index,
                    latency_s=time.perf_counter() - start,
                    cache_hit=bool(meta["cache_hit"]),
                )
            )


async def _run(
    clients: int,
    repeats: int,
    tier: str,
    names: Sequence[str],
    workers: int,
    prefer_processes: bool,
) -> Dict[str, Any]:
    from ..service.server import ServiceConfig, SolveService

    workload = _materialise_workload(names, tier)
    config = ServiceConfig(port=0, workers=workers, prefer_processes=prefer_processes)
    service = SolveService(config)
    await service.start()
    host, port = service.address
    samples: List[RequestSample] = []
    phases: Dict[str, Any] = {}
    try:
        for phase in ("cold", "warm"):
            phase_samples: List[RequestSample] = []
            started = time.perf_counter()
            for _ in range(max(1, repeats)):
                await asyncio.gather(
                    *(
                        _client_pass(host, port, index, workload, phase, phase_samples)
                        for index in range(clients)
                    )
                )
            phases[phase] = _summarise(phase_samples, time.perf_counter() - started)
            samples.extend(phase_samples)
        server_stats = service.stats()
    finally:
        await service.shutdown(drain=True)

    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "schema_version": 1,
        "tier": tier,
        "clients": clients,
        "repeats": repeats,
        "workers": workers,
        "pool_mode": server_stats["pool"]["mode"],
        "workload": list(names),
        "phases": phases,
        "server": {
            "cache_answers": server_stats["jobs"]["cache_answers"],
            "dedup_shared": server_stats["jobs"]["dedup_shared"],
            "admitted": server_stats["jobs"]["admitted"],
            "completed": server_stats["jobs"]["completed"],
        },
        "env": environment_metadata(),
        "samples": [
            {
                "scenario": sample.scenario,
                "phase": sample.phase,
                "client": sample.client,
                "latency_s": sample.latency_s,
                "cache_hit": sample.cache_hit,
            }
            for sample in samples
        ],
    }


def run_service_benchmark(
    clients: int = 4,
    repeats: int = 1,
    tier: str = "quick",
    scenarios: Optional[Sequence[str]] = None,
    workers: int = 2,
    prefer_processes: bool = True,
) -> Dict[str, Any]:
    """Run the service benchmark and return its report document.

    ``clients`` concurrent connections each issue the mixed workload
    ``repeats`` times per phase; see the module docstring for the two-phase
    (cold cache / warm cache) design.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    return asyncio.run(
        _run(
            clients=clients,
            repeats=repeats,
            tier=tier,
            names=tuple(scenarios) if scenarios else DEFAULT_WORKLOAD,
            workers=workers,
            prefer_processes=prefer_processes,
        )
    )


def _print_report(doc: Dict[str, Any]) -> None:
    print(
        f"service bench: {doc['clients']} clients x {len(doc['workload'])} scenarios "
        f"x {doc['repeats']} repeat(s), pool mode {doc['pool_mode']}"
    )
    for phase in ("cold", "warm"):
        summary = doc["phases"][phase]
        lat = summary["latency_s"]
        print(
            f"  {phase:>4}: {summary['requests']:4d} requests in {summary['wall_s']:.3f}s "
            f"({summary['requests_per_s']:8.1f} req/s)  "
            f"p50 {lat['p50'] * 1000:7.2f} ms  p90 {lat['p90'] * 1000:7.2f} ms  "
            f"p99 {lat['p99'] * 1000:7.2f} ms  ({summary['cache_hits']} cache hits)"
        )
    server = doc["server"]
    print(
        f"  server: {server['admitted']} admitted, {server['completed']} solved, "
        f"{server['cache_answers']} cache answers, {server['dedup_shared']} dedup-shared"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.service_bench",
        description="Measure request throughput and tail latency of the solve service.",
    )
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="workload passes per phase per client",
    )
    parser.add_argument("--tier", choices=("quick", "full"), default="quick")
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help=f"override the workload (repeatable) [default: {', '.join(DEFAULT_WORKLOAD)}]",
    )
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--no-processes", action="store_true", help="force the thread worker path")
    parser.add_argument("--output", metavar="PATH", help="write the report json to PATH")
    args = parser.parse_args(argv)

    doc = run_service_benchmark(
        clients=args.clients,
        repeats=args.repeats,
        tier=args.tier,
        scenarios=args.scenario,
        workers=args.workers,
        prefer_processes=not args.no_processes,
    )
    _print_report(doc)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")

    warm = doc["phases"]["warm"]
    # The warm phase re-requests already-solved problems through a shared
    # cache; zero hits there means the service's whole point is broken.
    if warm["cache_hits"] == 0:
        print("service bench: warm phase saw no cache hits", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
