"""The declarative scenario model: what a benchmark measures, not how.

A :class:`BenchScenario` names one workload — a DAG factory, a capacity, a
game/variant, the solver to dispatch, and the paper reference whose cost it
reproduces — at two size tiers (``quick`` for CI smoke runs, ``full`` for
real measurements).  Scenarios are registered once in
:mod:`repro.bench.scenarios`; the runner, the CLI, and the pytest-benchmark
wrappers under ``benchmarks/`` all consume the same registry, so a workload
is defined in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.dag import ComputationalDAG
from ..core.variants import ONE_SHOT, GameVariant
from ..api.problem import GAMES, PebblingProblem

__all__ = [
    "BenchScenario",
    "ScenarioTier",
    "TIERS",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "materialize_scenario",
    "iter_scenarios",
    "scenario_names",
    "scenario_groups",
]

#: The two size tiers every scenario defines.
TIERS = ("quick", "full")

#: A capacity is either a concrete integer or derived from the built DAG
#: (e.g. ``lambda dag: dag.max_in_degree + 1`` for constructions whose
#: feasible capacity depends on random structure).
CapacitySpec = Union[int, Callable[[ComputationalDAG], int]]


@dataclass(frozen=True)
class ScenarioTier:
    """One concrete size of a scenario.

    Parameters
    ----------
    dag_args:
        Positional arguments for the scenario's DAG factory.
    dag_kwargs:
        Keyword arguments for the DAG factory.  Randomised scenarios use
        this to pass their ``seed`` explicitly by name, so a reader of the
        registry (and the BENCH json's ``--list`` output) can see at a
        glance which workloads are seeded and with what.
    r:
        Fast-memory capacity, either an int or a callable of the built DAG.
    expected_cost:
        The closed-form I/O cost the run must land on exactly (propositions
        with exact formulas), or ``None`` when only the lower-bound gap is
        tracked.
    """

    dag_args: Tuple = ()
    dag_kwargs: Mapping[str, object] = field(default_factory=dict)
    r: CapacitySpec = 2
    expected_cost: Optional[int] = None

    def capacity(self, dag: ComputationalDAG) -> int:
        """Resolve the capacity spec against the built DAG."""
        if callable(self.r):
            return int(self.r(dag))
        return int(self.r)


@dataclass(frozen=True)
class BenchScenario:
    """A named benchmark workload at two size tiers.

    Parameters
    ----------
    name:
        Unique registry key (kebab-case, e.g. ``"tree-prbp-critical"``).
    group:
        The paper anchor the scenario reproduces (``"prop4.5"``,
        ``"thm6.9"``, ...); the ``benchmarks/`` wrappers parametrize by
        group so the paper-proposition file layout survives.
    title:
        One-line human description, shown by ``--list`` and in reports.
    dag_factory:
        Callable building the DAG from the tier's ``dag_args``.
    game:
        ``"rbp"`` or ``"prbp"``.
    variant:
        Game-rule variant (defaults to the one-shot game the paper analyses).
    solver:
        Solver name handed to :func:`repro.api.solve` (``"auto"`` runs the
        dispatch portfolio — itself a meaningful workload).
    solve_options:
        Extra keyword options forwarded to :func:`repro.api.solve`.
    tiers:
        Mapping ``tier name -> ScenarioTier`` covering every name in
        :data:`TIERS`.
    reference:
        Citation string for the expected cost or bound (``"Prop. 4.5 /
        App. A.2: k^d + 2k^(d-k) - 1"``).
    expect_optimal:
        When True the run must come back with ``SolveResult.optimal`` — the
        scenario reproduces a matching upper/lower bound pair, and losing
        that match is a correctness regression, not noise.
    custom_runner:
        When set, the runner hands the whole measurement to this callable —
        ``custom_runner(scenario, tier, repeats)`` must return a
        ``ScenarioRecord`` — instead of timing a ``solve()`` call.  This is
        how microbenchmarks that measure something other than a solve (e.g.
        the replay-throughput scenarios) live in the same registry, reports
        and ``--compare`` gate as the solver workloads.  Custom scenarios
        never consult the result cache and always run serially; under
        ``--jobs`` they run after the worker pool has drained, so their
        timings are not polluted by the suite's own parallelism.
    """

    name: str
    group: str
    title: str
    dag_factory: Callable[..., ComputationalDAG]
    game: str = "prbp"
    variant: GameVariant = field(default=ONE_SHOT)
    solver: str = "auto"
    solve_options: Mapping[str, object] = field(default_factory=dict)
    tiers: Mapping[str, ScenarioTier] = field(default_factory=dict)
    reference: str = ""
    expect_optimal: bool = False
    custom_runner: Optional[Callable[["BenchScenario", str, int], object]] = None

    def __post_init__(self) -> None:
        if self.game not in GAMES:
            raise ValueError(f"game must be one of {GAMES}, got {self.game!r}")
        missing = [tier for tier in TIERS if tier not in self.tiers]
        if missing:
            raise ValueError(f"scenario {self.name!r} is missing tiers: {missing}")

    def tier(self, name: str) -> ScenarioTier:
        """The :class:`ScenarioTier` registered under ``name``.

        Raises
        ------
        KeyError
            If the tier name is unknown (the message lists valid names).
        """
        try:
            return self.tiers[name]
        except KeyError:
            raise KeyError(
                f"scenario {self.name!r} has no tier {name!r}; available: {sorted(self.tiers)}"
            ) from None

    def build_problem(self, tier: str = "quick") -> PebblingProblem:
        """Materialise the tier into a concrete :class:`PebblingProblem`."""
        spec = self.tier(tier)
        dag = self.dag_factory(*spec.dag_args, **dict(spec.dag_kwargs))
        return PebblingProblem(dag, r=spec.capacity(dag), game=self.game, variant=self.variant)


_REGISTRY: Dict[str, BenchScenario] = {}


def register_scenario(scenario: BenchScenario) -> BenchScenario:
    """Add a scenario to the registry (names are a global namespace).

    Raises
    ------
    ValueError
        If the name is already taken; use :func:`unregister_scenario` first
        to replace a built-in.
    """
    if scenario.name in _REGISTRY:
        raise ValueError(
            f"a scenario named {scenario.name!r} is already registered; "
            "unregister_scenario() it first if you intend to replace it"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a scenario from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> BenchScenario:
    """Look up a registered scenario by name.

    Raises
    ------
    KeyError
        If no scenario of that name exists; the message lists known names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}") from None


def materialize_scenario(
    name: str, tier: str = "quick"
) -> Tuple[PebblingProblem, str, Dict[str, object]]:
    """Resolve a registered scenario into ``(problem, solver, options)``.

    The triple is exactly what :func:`repro.api.solve` takes, which makes
    this the one helper every scenario *consumer* outside the runner needs
    — the service CLI and the service bench pose registry workloads through
    it.  Importing here also registers the built-in scenarios, so callers
    see the populated registry without knowing about
    :mod:`repro.bench.scenarios`.
    """
    from . import scenarios as _register  # noqa: F401  (import populates the registry)

    scenario = get_scenario(name)
    return scenario.build_problem(tier), scenario.solver, dict(scenario.solve_options)


def iter_scenarios(
    group: Optional[str] = None,
    groups: Optional[Iterable[str]] = None,
    game: Optional[str] = None,
) -> List[BenchScenario]:
    """All registered scenarios matching the filters, sorted by (group, name).

    ``group`` filters on a single group, ``groups`` on a collection; passing
    both intersects them.
    """
    wanted = set(groups) if groups is not None else None
    out = []
    for scenario in _REGISTRY.values():
        if group is not None and scenario.group != group:
            continue
        if wanted is not None and scenario.group not in wanted:
            continue
        if game is not None and scenario.game != game:
            continue
        out.append(scenario)
    return sorted(out, key=lambda s: (s.group, s.name))


def scenario_names(**filters: object) -> List[str]:
    """The names of every scenario matching :func:`iter_scenarios` filters."""
    return [s.name for s in iter_scenarios(**filters)]


def scenario_groups() -> List[str]:
    """The sorted distinct group tags of the registry."""
    return sorted({s.group for s in _REGISTRY.values()})
