"""Maximum independent set / clique machinery for the NP-hardness reductions.

Theorem 4.8 reduces from the ``maxinset-vertex`` problem (Definition 4.9):
*given an undirected graph and a node ``v0``, is ``v0`` contained in some
maximum independent set?*  Lemma 4.10 / A.1 shows NP-hardness via the
equivalent ``maxclique-vertex`` problem on the complement graph.

This module provides:

* a small immutable :class:`UndirectedGraph` value type,
* exact (branch-and-bound) maximum independent set / clique solvers for the
  small instances used in tests and benchmarks,
* the decision procedures :func:`maxinset_vertex` and
  :func:`maxclique_vertex`,
* :func:`max_clique_via_vertex_oracle` — the self-reduction of Lemma A.1
  showing that a polynomial ``maxclique-vertex`` oracle yields a maximum
  clique; instantiated with the brute-force oracle it doubles as an
  executable proof check of the lemma on small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional, Set, Tuple

__all__ = [
    "UndirectedGraph",
    "maximum_independent_set",
    "independence_number",
    "maximum_clique",
    "clique_number",
    "maxinset_vertex",
    "maxclique_vertex",
    "max_clique_via_vertex_oracle",
]


@dataclass(frozen=True)
class UndirectedGraph:
    """A simple undirected graph on nodes ``0 .. n-1`` with a frozen edge set."""

    n: int
    edges: FrozenSet[Tuple[int, int]]

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "UndirectedGraph":
        """Normalise the edge list (ordered pairs, no self-loops, no duplicates)."""
        norm = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references a node outside 0..{n - 1}")
            norm.add((min(u, v), max(u, v)))
        return cls(n=n, edges=frozenset(norm))

    @classmethod
    def from_networkx(cls, graph) -> "UndirectedGraph":
        """Build from a ``networkx.Graph`` whose nodes are ``0 .. n-1``."""
        return cls.from_edges(graph.number_of_nodes(), graph.edges())

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        return (min(u, v), max(u, v)) in self.edges

    def neighbors(self, v: int) -> FrozenSet[int]:
        """The neighbourhood of ``v``."""
        return frozenset(
            (b if a == v else a) for a, b in self.edges if a == v or b == v
        )

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return len(self.neighbors(v))

    def complement(self) -> "UndirectedGraph":
        """The complement graph (independent sets become cliques and vice versa)."""
        comp = [
            (u, v)
            for u in range(self.n)
            for v in range(u + 1, self.n)
            if (u, v) not in self.edges
        ]
        return UndirectedGraph(n=self.n, edges=frozenset(comp))

    def remove_node(self, v: int) -> "UndirectedGraph":
        """The graph with node ``v`` (and its incident edges) removed; nodes are *not* renumbered."""
        return UndirectedGraph(
            n=self.n, edges=frozenset(e for e in self.edges if v not in e)
        )


def _max_independent_set(
    graph: UndirectedGraph, allowed: FrozenSet[int]
) -> FrozenSet[int]:
    """Branch-and-bound maximum independent set restricted to ``allowed`` nodes."""
    adj = {v: graph.neighbors(v) & allowed for v in allowed}
    best: Set[int] = set()

    def branch(candidates: Set[int], current: Set[int]) -> None:
        nonlocal best
        if len(current) + len(candidates) <= len(best):
            return
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        # branch on a maximum-degree candidate: either exclude it or include it
        v = max(candidates, key=lambda x: len(adj[x] & candidates))
        without = set(candidates)
        without.discard(v)
        # include v
        branch(without - adj[v], current | {v})
        # exclude v
        branch(without, current)

    branch(set(allowed), set())
    return frozenset(best)


def maximum_independent_set(graph: UndirectedGraph) -> FrozenSet[int]:
    """Some maximum independent set of ``graph`` (exact, exponential-time)."""
    return _max_independent_set(graph, frozenset(range(graph.n)))


def independence_number(graph: UndirectedGraph) -> int:
    """The size of a maximum independent set."""
    return len(maximum_independent_set(graph))


def maximum_clique(graph: UndirectedGraph) -> FrozenSet[int]:
    """Some maximum clique of ``graph`` (via the complement graph)."""
    return maximum_independent_set(graph.complement())


def clique_number(graph: UndirectedGraph) -> int:
    """The size of a maximum clique."""
    return len(maximum_clique(graph))


def maxinset_vertex(graph: UndirectedGraph, v0: int) -> bool:
    """Definition 4.9: is ``v0`` contained in *some* maximum independent set?

    Decided exactly by comparing the independence number with the largest
    independent set forced to contain ``v0`` (i.e. ``1 + α(G − N[v0])``).
    """
    if not (0 <= v0 < graph.n):
        raise ValueError(f"node {v0} is not a node of the graph")
    alpha = independence_number(graph)
    allowed = frozenset(range(graph.n)) - graph.neighbors(v0) - {v0}
    with_v0 = 1 + len(_max_independent_set(graph, allowed))
    return with_v0 == alpha


def maxclique_vertex(graph: UndirectedGraph, v0: int) -> bool:
    """The clique formulation used in Lemma A.1: is ``v0`` in some maximum clique?"""
    return maxinset_vertex(graph.complement(), v0)


def max_clique_via_vertex_oracle(
    graph: UndirectedGraph,
    oracle: Optional[Callable[[UndirectedGraph, int], bool]] = None,
) -> FrozenSet[int]:
    """The Lemma A.1 self-reduction: find a maximum clique using a ``maxclique-vertex`` oracle.

    The procedure mirrors the proof: if every node has degree ``n - 1`` the
    whole (remaining) node set is a clique; otherwise either some node is in
    no maximum clique (remove it — all maximum cliques survive) or every node
    is in one, in which case any node of non-full degree can be removed while
    keeping at least one maximum clique intact.  With the exact oracle the
    returned set is always a maximum clique of the input graph, which the
    tests verify against the brute-force solver.
    """
    if oracle is None:
        oracle = maxclique_vertex
    active: Set[int] = set(range(graph.n))
    g = graph
    while True:
        if not active:
            return frozenset()
        if all(len(g.neighbors(v) & active) == len(active) - 1 for v in active):
            return frozenset(active)
        # restrict the oracle calls to the graph induced by the active nodes
        induced = UndirectedGraph(
            n=graph.n,
            edges=frozenset(e for e in g.edges if e[0] in active and e[1] in active),
        )
        removed = False
        for v in sorted(active):
            if not oracle(_induced_subgraph(induced, active), _rank(active, v)):
                active.remove(v)
                removed = True
                break
        if removed:
            continue
        # every node is in some maximum clique; drop any node of non-full degree
        v = next(
            v for v in sorted(active) if len(induced.neighbors(v) & active) < len(active) - 1
        )
        active.remove(v)


def _rank(active: Set[int], v: int) -> int:
    """Position of ``v`` among the sorted active nodes (the induced graph's node id)."""
    return sorted(active).index(v)


def _induced_subgraph(graph: UndirectedGraph, keep: Set[int]) -> UndirectedGraph:
    """The subgraph induced by ``keep``, with nodes renumbered ``0 .. len(keep)-1``."""
    order = sorted(keep)
    remap = {old: new for new, old in enumerate(order)}
    edges = [
        (remap[u], remap[v]) for u, v in graph.edges if u in keep and v in keep
    ]
    return UndirectedGraph.from_edges(len(order), edges)
