"""The Theorem 4.8 reduction: from ``maxinset-vertex`` to "does PRBP beat RBP?".

Theorem 4.8 states that deciding ``OPT_PRBP < OPT_RBP`` for a given DAG and
capacity ``r`` is NP-hard.  The reduction (Appendix A.4, building on [3, 18])
creates, for an undirected graph ``G0`` on ``n0`` nodes and a distinguished
node ``v0``:

* per node ``u`` of ``G0``, two pebble-collection gadgets ``H1(u)`` and
  ``H2(u)`` with ``r - 2`` source nodes each and long chains;
* the first ``b`` sources of ``H1(u)`` and ``H2(u)`` are merged (visiting the
  pair consecutively saves ``b`` reloads);
* for every edge ``(u1, u2)`` of ``G0``, one source of ``H2(u2)`` is replaced
  by a node in the middle of the chain of ``H1(u1)`` and vice versa (so the
  gadget pairs of adjacent nodes cannot both be visited consecutively);
* a dependence from ``H1(u)`` to ``H2(u)`` forcing the natural visit order;
* two triples ``Z1 ⊆ H1(v0)``, ``Z2 ⊆ H2(v0)`` of sources and an extra sink
  ``w`` fed by all six — the node whose cost differs between RBP and PRBP
  exactly when ``v0`` is in *no* maximum independent set.

The construction is exact in its combinatorial structure and in the parameter
relations of Appendix A.4 (``r = b + 4·n0 + 5``, chain length
``ℓ = 2·ℓ0 + n0 + (r - 2)`` with ``ℓ0 = 2(r-2)·(n0·b + 2|E0| + 6 + r)``).
Because ``ℓ`` is what makes the reduction sound but also what makes the DAG
large, the builder accepts a ``chain_scale`` parameter (default 1.0 =
faithful) that the benchmarks use to build structurally identical but smaller
demonstration instances.

Deciding the actual value of ``OPT_RBP`` / ``OPT_PRBP`` on these instances is
of course the NP-hard problem itself; the tests therefore verify the
*structural* guarantees (sizes, degrees, polynomiality, the merge/replacement
book-keeping and the independence-set semantics on the ``G0`` side).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.dag import ComputationalDAG, Edge
from .independent_set import UndirectedGraph

__all__ = ["Theorem48Instance", "Theorem48Parameters", "build_theorem48_instance"]


@dataclass(frozen=True)
class Theorem48Parameters:
    """The numeric parameters of the Appendix A.4 construction."""

    n0: int
    num_edges0: int
    b: int
    r: int
    group_size: int  # = r - 2 source nodes per gadget
    ell0: int
    ell: int  # chain length per gadget

    @classmethod
    def from_graph(cls, graph: UndirectedGraph, b: int = 8, chain_scale: float = 1.0) -> "Theorem48Parameters":
        """Derive the parameters from ``G0`` following Appendix A.4."""
        if b <= 3:
            raise ValueError("b must exceed |Z1| = |Z2| = 3")
        n0 = graph.n
        e0 = len(graph.edges)
        r = b + 4 * n0 + 5
        group_size = r - 2
        ell0_exact = 2 * (r - 2) * (n0 * b + 2 * e0 + 6 + r)
        ell0 = max(n0 + 4, int(math.ceil(ell0_exact * chain_scale)))
        ell = 2 * ell0 + n0 + (r - 2)
        return cls(n0=n0, num_edges0=e0, b=b, r=r, group_size=group_size, ell0=ell0, ell=ell)


@dataclass
class Theorem48Instance:
    """The reduction DAG plus the book-keeping needed to interpret it.

    ``h1_sources[u]`` / ``h2_sources[u]`` list the source-role node ids of the
    two gadgets of ``G0``-node ``u`` (some of which are merged nodes or middle
    chain nodes of other gadgets, per the construction); ``h1_chain[u]`` /
    ``h2_chain[u]`` are the chain node ids.  ``z1`` / ``z2`` are the triples
    feeding the extra sink ``w``.
    """

    dag: ComputationalDAG
    graph: UndirectedGraph
    v0: int
    params: Theorem48Parameters
    h1_sources: Dict[int, List[int]]
    h2_sources: Dict[int, List[int]]
    h1_chain: Dict[int, List[int]]
    h2_chain: Dict[int, List[int]]
    merged_sources: Dict[int, List[int]]
    z1: Tuple[int, int, int]
    z2: Tuple[int, int, int]
    w: int

    @property
    def r(self) -> int:
        """The fast-memory capacity the reduction is stated for."""
        return self.params.r


def build_theorem48_instance(
    graph: UndirectedGraph,
    v0: int,
    b: int = 8,
    chain_scale: float = 1.0,
) -> Theorem48Instance:
    """Build the Theorem 4.8 / Appendix A.4 reduction DAG for ``(G0, v0)``."""
    if not (0 <= v0 < graph.n):
        raise ValueError(f"v0 = {v0} is not a node of G0")
    params = Theorem48Parameters.from_graph(graph, b=b, chain_scale=chain_scale)
    n0, group_size, ell = params.n0, params.group_size, params.ell
    labels: Dict[int, str] = {}
    edges: List[Edge] = []
    next_id = 0

    def new(label: str) -> int:
        nonlocal next_id
        labels[next_id] = label
        next_id += 1
        return next_id - 1

    # ------------------------------------------------------------------ #
    # 1. chains: every gadget gets its own chain of length ell
    # ------------------------------------------------------------------ #
    h1_chain: Dict[int, List[int]] = {}
    h2_chain: Dict[int, List[int]] = {}
    for u in range(n0):
        h1_chain[u] = [new(f"H1({u}).c{i}") for i in range(ell)]
        h2_chain[u] = [new(f"H2({u}).c{i}") for i in range(ell)]
    # middle section of each H1 chain used as replacement nodes (A.4): the n0
    # nodes right after the first long part
    middle_offset = params.ell0 + (params.r - 2)

    def h1_middle(u: int, idx: int) -> int:
        return h1_chain[u][middle_offset + idx]

    # ------------------------------------------------------------------ #
    # 2. source groups: b merged + per-gadget sources, with cross replacements
    # ------------------------------------------------------------------ #
    merged_sources: Dict[int, List[int]] = {}
    h1_sources: Dict[int, List[int]] = {}
    h2_sources: Dict[int, List[int]] = {}
    for u in range(n0):
        merged = [new(f"M({u}).{i}") for i in range(params.b)]
        merged_sources[u] = merged
        own_h1 = [new(f"H1({u}).s{i}") for i in range(group_size - params.b)]
        h1_sources[u] = merged + own_h1
        # H2's own sources: one slot per G0-neighbour is *replaced* by a
        # middle chain node of the neighbour's H1 gadget, and one further slot
        # by a middle node of this node's own H1 gadget (the H1(u) -> H2(u)
        # dependence the appendix adds for a simpler analysis).
        neighbours = sorted(graph.neighbors(u))
        replacements = [h1_middle(nb, sorted(graph.neighbors(nb)).index(u)) for nb in neighbours]
        replacements.append(h1_middle(u, len(neighbours)))
        own_count = group_size - params.b - len(replacements)
        if own_count < 3 * n0:
            raise ValueError(
                "the group size is too small to leave 3*n0 anchor nodes; increase b"
            )
        own_h2 = [new(f"H2({u}).s{i}") for i in range(own_count)]
        h2_sources[u] = merged + replacements + own_h2

    # ------------------------------------------------------------------ #
    # 3. chain wiring: chain node i depends on the previous chain node and
    #    on source (i mod group_size) of its gadget
    # ------------------------------------------------------------------ #
    for u in range(n0):
        for which, chain, sources in (
            ("H1", h1_chain[u], h1_sources[u]),
            ("H2", h2_chain[u], h2_sources[u]),
        ):
            for i, c in enumerate(chain):
                if i > 0:
                    edges.append((chain[i - 1], c))
                edges.append((sources[i % group_size], c))

    # ------------------------------------------------------------------ #
    # 4. Z1, Z2 and the extra sink w (the PRBP-vs-RBP discriminator)
    # ------------------------------------------------------------------ #
    z1 = tuple(h1_sources[v0][params.b : params.b + 3])
    z2_pool = [s for s in h2_sources[v0] if labels[s].startswith(f"H2({v0}).s")]
    z2 = tuple(z2_pool[:3])
    w = new("w")
    for z in list(z1) + list(z2):
        edges.append((z, w))

    dag = ComputationalDAG(next_id, edges, labels=labels, name=f"thm48-n{n0}")
    return Theorem48Instance(
        dag=dag,
        graph=graph,
        v0=v0,
        params=params,
        h1_sources=h1_sources,
        h2_sources=h2_sources,
        h1_chain=h1_chain,
        h2_chain=h2_chain,
        merged_sources=merged_sources,
        z1=z1,  # type: ignore[arg-type]
        z2=z2,  # type: ignore[arg-type]
        w=w,
    )
