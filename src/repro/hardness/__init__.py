"""NP-hardness machinery: independent-set problems and the paper's reduction constructions."""

from .independent_set import (
    UndirectedGraph,
    clique_number,
    independence_number,
    max_clique_via_vertex_oracle,
    maxclique_vertex,
    maximum_clique,
    maximum_independent_set,
    maxinset_vertex,
)
from .levels import (
    AdaptedTower,
    CrossEdge,
    LevelRef,
    TowerSpec,
    TowersInstance,
    build_towers_dag,
    demo_theorem71_instance,
    insert_auxiliary_levels,
)
from .reduction_thm48 import (
    Theorem48Instance,
    Theorem48Parameters,
    build_theorem48_instance,
)

__all__ = [
    "UndirectedGraph",
    "clique_number",
    "independence_number",
    "max_clique_via_vertex_oracle",
    "maxclique_vertex",
    "maximum_clique",
    "maximum_independent_set",
    "maxinset_vertex",
    "AdaptedTower",
    "CrossEdge",
    "LevelRef",
    "TowerSpec",
    "TowersInstance",
    "build_towers_dag",
    "demo_theorem71_instance",
    "insert_auxiliary_levels",
    "Theorem48Instance",
    "Theorem48Parameters",
    "build_theorem48_instance",
]
