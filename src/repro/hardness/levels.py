"""Level gadgets, towers and auxiliary levels for the Theorem 7.1 construction.

Theorem 7.1 shows that ``OPT_PRBP`` is NP-hard to approximate within any
``n^{1-ε}`` factor by adapting the RBP inapproximability construction of [3].
That construction is built from *level gadgets* arranged into *towers*:

* a **level** of size ``ℓ`` is a chain ``u_1 → u_2 → ... → u_ℓ``;
* between two consecutive levels ``(u_1..u_ℓ)`` and ``(v_1..v_{ℓ'})`` of a
  tower there are the edges ``(u_i, v_i)`` for ``i <= min(ℓ, ℓ')`` and, when
  ``ℓ > ℓ'``, additionally ``(u_i, v_{ℓ'})`` for ``ℓ' < i <= ℓ``;
* a **tower** is a sequence of levels; cross-tower precedence edges connect a
  level of one tower to a level of another.

The PRBP adaptation (Figure 5 / Appendix A.5) inserts **auxiliary levels**:

* one auxiliary level (of the same size as the following original level)
  before every original level, and incoming cross-tower edges are re-routed
  to the lowermost auxiliary level;
* when a level of size ``ℓ`` is followed by a smaller level of size
  ``ℓ' < ℓ``, a total of ``ℓ - ℓ' + 2`` auxiliary levels are inserted and
  every node ``u_{ℓ'+1} .. u_ℓ`` gets an edge to the *last* node of each of
  those auxiliary levels — this is what stops partial computations from
  freeing the pebbles of ``u_{ℓ'+1} .. u_ℓ`` early;
* an auxiliary level is also appended on top of every tower.

This module provides the spec types (:class:`TowerSpec`), the PRBP-adapted
spec transformation (:func:`insert_auxiliary_levels`), and the DAG builder
(:func:`build_towers_dag`), plus a small demonstration construction used by
the E12 benchmark.  The full [3] reduction (choosing the tower sizes from a
3-SAT-like instance) is outside the scope of this paper, which only modifies
the level gadgets; accordingly the builder takes arbitrary tower size
profiles and cross-tower precedence constraints as input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.dag import ComputationalDAG, Edge

__all__ = [
    "LevelRef",
    "TowerSpec",
    "CrossEdge",
    "AdaptedTower",
    "insert_auxiliary_levels",
    "build_towers_dag",
    "TowersInstance",
    "demo_theorem71_instance",
]


@dataclass(frozen=True)
class LevelRef:
    """Reference to an original level: ``tower`` index and ``level`` index within the tower."""

    tower: int
    level: int


@dataclass(frozen=True)
class CrossEdge:
    """A cross-tower precedence constraint: level ``src`` must be computed before level ``dst``.

    In the original RBP construction the edges go from the nodes of ``src`` to
    the corresponding nodes of ``dst``; in the PRBP adaptation they are routed
    to the lowermost auxiliary level inserted before ``dst``.
    """

    src: LevelRef
    dst: LevelRef


@dataclass(frozen=True)
class TowerSpec:
    """Sizes of the original levels of one tower, bottom (sources) first."""

    level_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.level_sizes or any(s < 1 for s in self.level_sizes):
            raise ValueError("every tower needs at least one level of positive size")


@dataclass
class AdaptedTower:
    """A tower after the Appendix A.5 auxiliary-level insertion.

    ``levels[i]`` is the size of the ``i``-th physical level (bottom first);
    ``is_auxiliary[i]`` marks the inserted levels; ``original_index[i]`` maps
    a non-auxiliary physical level back to its index in the original spec
    (``-1`` for auxiliary levels); ``entry_aux_of_original[j]`` is the
    physical index of the lowermost auxiliary level inserted before original
    level ``j`` (the level cross-tower edges are routed to); ``shrink_extra``
    maps a physical auxiliary-level index to the original level whose
    "wide" nodes ``u_{ℓ'+1} .. u_ℓ`` must feed its last node.
    """

    levels: List[int]
    is_auxiliary: List[bool]
    original_index: List[int]
    entry_aux_of_original: Dict[int, int]
    shrink_extra: Dict[int, int]


def insert_auxiliary_levels(spec: TowerSpec) -> AdaptedTower:
    """Apply the Appendix A.5 transformation to one tower's level-size profile."""
    sizes = spec.level_sizes
    levels: List[int] = []
    is_aux: List[bool] = []
    orig_idx: List[int] = []
    entry_aux: Dict[int, int] = {}
    shrink_extra: Dict[int, int] = {}

    def push(size: int, aux: bool, original: int = -1) -> int:
        levels.append(size)
        is_aux.append(aux)
        orig_idx.append(original)
        return len(levels) - 1

    for j, size in enumerate(sizes):
        if j == 0:
            push(size, aux=False, original=0)
            continue
        prev = sizes[j - 1]
        if prev > size:
            count = prev - size + 2
        else:
            count = 1
        first_aux = None
        for a in range(count):
            idx = push(size, aux=True)
            if first_aux is None:
                first_aux = idx
            if prev > size:
                shrink_extra[idx] = j - 1
        entry_aux[j] = first_aux  # type: ignore[assignment]
        push(size, aux=False, original=j)
    # one auxiliary level on top of the tower (same size as the last level)
    push(sizes[-1], aux=True)
    return AdaptedTower(
        levels=levels,
        is_auxiliary=is_aux,
        original_index=orig_idx,
        entry_aux_of_original=entry_aux,
        shrink_extra=shrink_extra,
    )


@dataclass
class TowersInstance:
    """The DAG built from a set of (adapted or plain) towers plus book-keeping.

    ``nodes[t][i]`` lists the node ids of physical level ``i`` of tower ``t``
    (bottom first, chain order).
    """

    dag: ComputationalDAG
    adapted: bool
    towers: List[AdaptedTower]
    nodes: List[List[List[int]]]

    def level_nodes(self, tower: int, physical_level: int) -> List[int]:
        """Node ids of one physical level."""
        return self.nodes[tower][physical_level]


def _plain_adapted(spec: TowerSpec) -> AdaptedTower:
    """A tower with no auxiliary levels (used to build the original RBP construction)."""
    sizes = list(spec.level_sizes)
    return AdaptedTower(
        levels=sizes,
        is_auxiliary=[False] * len(sizes),
        original_index=list(range(len(sizes))),
        entry_aux_of_original={},
        shrink_extra={},
    )


def build_towers_dag(
    specs: Sequence[TowerSpec],
    cross_edges: Sequence[CrossEdge] = (),
    adapted: bool = True,
) -> TowersInstance:
    """Build the multi-tower DAG, optionally with the PRBP auxiliary-level adaptation.

    With ``adapted=False`` the original RBP-style construction is produced
    (cross edges go directly between the original levels); with
    ``adapted=True`` the Appendix A.5 modifications are applied.
    """
    adapted_towers = [insert_auxiliary_levels(s) if adapted else _plain_adapted(s) for s in specs]
    labels: Dict[int, str] = {}
    edges: List[Edge] = []
    next_id = 0
    nodes: List[List[List[int]]] = []

    def new(label: str) -> int:
        nonlocal next_id
        labels[next_id] = label
        next_id += 1
        return next_id - 1

    # create all nodes
    for t, tower in enumerate(adapted_towers):
        tower_nodes: List[List[int]] = []
        for li, size in enumerate(tower.levels):
            kind = "aux" if tower.is_auxiliary[li] else "lvl"
            tower_nodes.append([new(f"T{t}.{kind}{li}.{i}") for i in range(size)])
        nodes.append(tower_nodes)

    # intra-tower edges
    for t, tower in enumerate(adapted_towers):
        for li, level in enumerate(nodes[t]):
            # chain within the level
            for i in range(len(level) - 1):
                edges.append((level[i], level[i + 1]))
            if li == 0:
                continue
            below = nodes[t][li - 1]
            ell, ell_prime = len(below), len(level)
            for i in range(min(ell, ell_prime)):
                edges.append((below[i], level[i]))
            if ell > ell_prime:
                for i in range(ell_prime, ell):
                    edges.append((below[i], level[ell_prime - 1]))
            # the shrink-protection edges: wide nodes of the original level feed
            # the last node of each auxiliary level inserted after it
            src_orig = tower.shrink_extra.get(li)
            if src_orig is not None:
                # physical index of that original level
                phys = tower.original_index.index(src_orig)
                wide_nodes = nodes[t][phys]
                ell_orig = len(wide_nodes)
                for i in range(ell_prime, ell_orig):
                    edge = (wide_nodes[i], level[-1])
                    if edge not in edges:
                        edges.append(edge)

    # cross-tower precedence edges
    for ce in cross_edges:
        src_tower = adapted_towers[ce.src.tower]
        dst_tower = adapted_towers[ce.dst.tower]
        src_phys = src_tower.original_index.index(ce.src.level)
        if adapted and ce.dst.level in dst_tower.entry_aux_of_original:
            dst_phys = dst_tower.entry_aux_of_original[ce.dst.level]
        else:
            dst_phys = dst_tower.original_index.index(ce.dst.level)
        src_nodes = nodes[ce.src.tower][src_phys]
        dst_nodes = nodes[ce.dst.tower][dst_phys]
        for i in range(min(len(src_nodes), len(dst_nodes))):
            edges.append((src_nodes[i], dst_nodes[i]))
        if len(src_nodes) > len(dst_nodes):
            for i in range(len(dst_nodes), len(src_nodes)):
                edges.append((src_nodes[i], dst_nodes[-1]))

    # deduplicate edges that the shrink-protection rule may have repeated
    seen = set()
    unique_edges: List[Edge] = []
    for e in edges:
        if e not in seen:
            seen.add(e)
            unique_edges.append(e)

    dag = ComputationalDAG(next_id, unique_edges, labels=labels, name="thm71-towers")
    return TowersInstance(dag=dag, adapted=adapted, towers=adapted_towers, nodes=nodes)


def demo_theorem71_instance(adapted: bool = True) -> TowersInstance:
    """A small two-tower demonstration instance with a shrinking level and a cross edge.

    Used by the E12 benchmark and the hardness example to show the effect of
    the auxiliary levels on the DAG structure (size growth stays polynomial,
    precedence constraints survive partial computations).
    """
    main = TowerSpec(level_sizes=(4, 4, 2, 3))
    side = TowerSpec(level_sizes=(3, 3, 3))
    cross = [
        CrossEdge(src=LevelRef(tower=1, level=1), dst=LevelRef(tower=0, level=2)),
        CrossEdge(src=LevelRef(tower=0, level=1), dst=LevelRef(tower=1, level=2)),
    ]
    return build_towers_dag([main, side], cross, adapted=adapted)
