"""Parameter sweeps: run a cost function over a parameter grid and collect rows.

The benchmark modules all follow the same shape — vary one or two parameters
of a DAG family, evaluate a handful of cost functions (lower bound, PRBP
strategy, RBP strategy/baseline), and print the rows next to the paper's
claim.  :func:`run_sweep` factors that loop out so benchmarks stay small and
uniform, and :func:`run_solver_sweep` specialises it to the
:func:`repro.api.solve` facade: one :class:`~repro.api.PebblingProblem` per
parameter tuple, with cost / winning solver / optimality / lower bound
collected automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..api.batch import solve_many
from ..api.cache import ResultCache
from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from .reporting import format_table

__all__ = ["SweepResult", "run_sweep", "run_solver_sweep"]


@dataclass
class SweepResult:
    """Rows produced by :func:`run_sweep` plus helpers to render them."""

    parameter_names: Tuple[str, ...]
    metric_names: Tuple[str, ...]
    rows: List[Tuple[Tuple[object, ...], Dict[str, object]]] = field(default_factory=list)

    def as_table(self, title: str = "") -> str:
        """Render the sweep as a fixed-width text table."""
        headers = list(self.parameter_names) + list(self.metric_names)
        body = [
            list(params) + [metrics.get(name, "") for name in self.metric_names]
            for params, metrics in self.rows
        ]
        return format_table(headers, body, title=title)

    def column(self, metric: str) -> List[object]:
        """All values of one metric, in row order."""
        return [metrics[metric] for _, metrics in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def run_sweep(
    parameter_names: Sequence[str],
    parameter_values: Iterable[Tuple[object, ...]],
    metrics: Mapping[str, Callable[..., object]],
) -> SweepResult:
    """Evaluate ``metrics`` over every parameter tuple.

    Each metric callable receives the parameter tuple unpacked as positional
    arguments and its result is stored under the metric's name.
    """
    result = SweepResult(
        parameter_names=tuple(parameter_names), metric_names=tuple(metrics.keys())
    )
    for params in parameter_values:
        row = {name: fn(*params) for name, fn in metrics.items()}
        result.rows.append((tuple(params), row))
    return result


def run_solver_sweep(
    parameter_names: Sequence[str],
    parameter_values: Iterable[Tuple[object, ...]],
    problem_fn: Callable[..., PebblingProblem],
    solver: str = "auto",
    budget: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    **solve_options: object,
) -> SweepResult:
    """Sweep :func:`repro.api.solve_many` over a parameter grid.

    ``problem_fn`` receives each parameter tuple unpacked and returns the
    :class:`PebblingProblem` to solve; the collected metrics per row are
    ``cost``, ``solver`` (the portfolio member that won), ``optimal``,
    ``lower_bound``, ``peak_red`` and ``refined_from`` (the cost the anytime
    refinement pass started from, when it improved the row — ``None`` for
    unrefined rows, so a sweep table shows at a glance where the local
    search earned its keep).  A parameter point with no valid pebbling
    records ``None`` for every metric instead of aborting the sweep.

    The whole grid is posed as one batch, so ``jobs`` spreads it over worker
    processes and ``cache`` lets repeated sweeps (or overlapping grids) skip
    re-solving — rows come back identical to the serial defaults either way.
    ``solve_options`` forward to every solve, so ``seed=`` / ``refine_steps=``
    turn a sweep into a reproducible quality/time dial.
    """
    metric_names = ("cost", "solver", "optimal", "lower_bound", "peak_red", "refined_from")
    result = SweepResult(
        parameter_names=tuple(parameter_names), metric_names=metric_names
    )
    params_list = [tuple(params) for params in parameter_values]
    problems = [problem_fn(*params) for params in params_list]
    outcomes = solve_many(
        problems,
        solver=solver,
        budget=budget,
        jobs=jobs,
        cache=cache,
        return_exceptions=True,
        **solve_options,
    )
    for params, outcome in zip(params_list, outcomes):
        if isinstance(outcome, SolveResult):
            trajectory = (
                outcome.solve_stats.refinement if outcome.solve_stats is not None else None
            )
            row: Dict[str, object] = {
                "cost": outcome.cost,
                "solver": outcome.solver,
                "optimal": outcome.optimal,
                "lower_bound": outcome.lower_bound,
                "peak_red": outcome.stats.peak_red,
                "refined_from": (
                    trajectory.initial_cost
                    if trajectory is not None and trajectory.improvement > 0
                    else None
                ),
            }
        else:
            row = {name: None for name in metric_names}
        result.rows.append((params, row))
    return result
