"""Parameter sweeps: run a cost function over a parameter grid and collect rows.

The benchmark modules all follow the same shape — vary one or two parameters
of a DAG family, evaluate a handful of cost functions (lower bound, PRBP
strategy, RBP strategy/baseline), and print the rows next to the paper's
claim.  :func:`run_sweep` factors that loop out so benchmarks stay small and
uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from .reporting import format_table

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Rows produced by :func:`run_sweep` plus helpers to render them."""

    parameter_names: Tuple[str, ...]
    metric_names: Tuple[str, ...]
    rows: List[Tuple[Tuple[object, ...], Dict[str, object]]] = field(default_factory=list)

    def as_table(self, title: str = "") -> str:
        """Render the sweep as a fixed-width text table."""
        headers = list(self.parameter_names) + list(self.metric_names)
        body = [
            list(params) + [metrics.get(name, "") for name in self.metric_names]
            for params, metrics in self.rows
        ]
        return format_table(headers, body, title=title)

    def column(self, metric: str) -> List[object]:
        """All values of one metric, in row order."""
        return [metrics[metric] for _, metrics in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def run_sweep(
    parameter_names: Sequence[str],
    parameter_values: Iterable[Tuple[object, ...]],
    metrics: Mapping[str, Callable[..., object]],
) -> SweepResult:
    """Evaluate ``metrics`` over every parameter tuple.

    Each metric callable receives the parameter tuple unpacked as positional
    arguments and its result is stored under the metric's name.
    """
    result = SweepResult(
        parameter_names=tuple(parameter_names), metric_names=tuple(metrics.keys())
    )
    for params in parameter_values:
        row = {name: fn(*params) for name, fn in metrics.items()}
        result.rows.append((tuple(params), row))
    return result
