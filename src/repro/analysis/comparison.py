"""RBP-vs-PRBP comparison harness, built on the :mod:`repro.api` facade.

:func:`compare_models` poses the same DAG/capacity as two
:class:`~repro.api.PebblingProblem` instances (one per game), hands both to
:func:`repro.api.solve` with the auto-dispatch portfolio, and returns a
:class:`ModelComparison` — a thin view over the two
:class:`~repro.api.SolveResult` objects that keeps the record-style fields
the examples and benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..api.batch import solve_many
from ..api.cache import ResultCache
from ..api.dispatch import AUTO_EXACT_NODE_LIMIT
from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from ..core.dag import ComputationalDAG
from ..core.variants import ONE_SHOT, GameVariant

__all__ = ["ModelComparison", "compare_models", "EXACT_NODE_LIMIT"]

#: Above this node count the auto portfolio skips the exhaustive solvers
#: (kept as an alias of the facade's limit for backwards compatibility).
EXACT_NODE_LIMIT = AUTO_EXACT_NODE_LIMIT


@dataclass(frozen=True)
class ModelComparison:
    """Costs of one DAG under both games.

    ``rbp_exact`` / ``prbp_exact`` record whether the corresponding cost came
    from an exact solver (exhaustive search) or is only an achievable upper
    bound (greedy / structured strategy).  The full :class:`SolveResult` of
    each side — schedule, stats, lower bound, winning solver — is available
    as ``rbp_result`` / ``prbp_result`` when the side was solvable.
    """

    dag_name: str
    n: int
    r: int
    trivial_cost: int
    rbp_cost: Optional[int]
    rbp_exact: bool
    prbp_cost: Optional[int]
    prbp_exact: bool
    rbp_result: Optional[SolveResult] = field(default=None, compare=False)
    prbp_result: Optional[SolveResult] = field(default=None, compare=False)

    @classmethod
    def from_results(
        cls,
        dag: ComputationalDAG,
        r: int,
        rbp_result: Optional[SolveResult],
        prbp_result: Optional[SolveResult],
    ) -> "ModelComparison":
        """Build the comparison view over two (possibly missing) solve results."""
        return cls(
            dag_name=dag.name,
            n=dag.n,
            r=r,
            trivial_cost=dag.trivial_cost(),
            rbp_cost=None if rbp_result is None else rbp_result.cost,
            rbp_exact=rbp_result is not None and rbp_result.exact_solver,
            prbp_cost=None if prbp_result is None else prbp_result.cost,
            prbp_exact=prbp_result is not None and prbp_result.exact_solver,
            rbp_result=rbp_result,
            prbp_result=prbp_result,
        )

    @property
    def gap(self) -> Optional[int]:
        """``RBP - PRBP`` cost difference (None if either side is unavailable)."""
        if self.rbp_cost is None or self.prbp_cost is None:
            return None
        return self.rbp_cost - self.prbp_cost

    @property
    def prbp_strictly_better(self) -> Optional[bool]:
        """True iff partial computations strictly reduce the (measured) cost."""
        gap = self.gap
        return None if gap is None else gap > 0


def compare_models(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    exact_node_limit: int = EXACT_NODE_LIMIT,
    max_states: int = 500_000,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    seed: Optional[int] = None,
    **solve_options: object,
) -> ModelComparison:
    """Compare RBP and PRBP costs on ``dag`` with capacity ``r``.

    Both games are posed as one batch through :func:`repro.api.solve_many`
    with the ``"auto"`` portfolio: exhaustive optima below
    ``exact_node_limit`` nodes (within the ``max_states`` search budget), the
    family-matched structured strategy when the DAG carries a family tag, and
    the greedy upper-bound fallback otherwise, each followed by the anytime
    refinement pass (``seed`` pins its RNG; the pass auto-skips provably
    optimal results and DAGs above
    :data:`~repro.api.dispatch.GREEDY_COMPARISON_NODE_LIMIT` nodes — on
    those, pass ``refine_steps=`` explicitly).  ``jobs=2`` solves the two
    games in parallel worker processes and ``cache`` reuses previously solved
    sides; either way the costs are identical to the serial defaults.  A game
    with no valid pebbling at all (e.g. RBP with ``r < Δ_in + 1``) is
    reported as ``None``.
    """
    problems = [PebblingProblem(dag, r, game=game, variant=variant) for game in ("rbp", "prbp")]
    outcomes = solve_many(
        problems,
        solver="auto",
        budget=max_states,
        seed=seed,
        exact_node_limit=exact_node_limit,
        jobs=jobs,
        cache=cache,
        return_exceptions=True,
        **solve_options,
    )
    rbp_result, prbp_result = (
        outcome if isinstance(outcome, SolveResult) else None for outcome in outcomes
    )
    return ModelComparison.from_results(dag, r, rbp_result, prbp_result)
