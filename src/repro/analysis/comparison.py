"""RBP-vs-PRBP comparison harness.

:func:`compare_models` bundles, for one DAG and capacity, the quantities the
paper's examples revolve around: the trivial cost, the optimal (or best
available) cost in both games, and their gap.  On small DAGs it uses the
exhaustive solvers; on larger ones it falls back to the greedy strategies and
marks the results as upper bounds.  The examples and several benchmarks print
these records directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.dag import ComputationalDAG
from ..core.exceptions import SolverError
from ..core.variants import ONE_SHOT, GameVariant
from ..solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost
from ..solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule

__all__ = ["ModelComparison", "compare_models"]

#: Above this node count the exhaustive solvers are not attempted.
EXACT_NODE_LIMIT = 14


@dataclass(frozen=True)
class ModelComparison:
    """Costs of one DAG under both games.

    ``rbp_exact`` / ``prbp_exact`` record whether the corresponding cost is an
    optimum (exhaustive solver) or only an achievable upper bound (greedy /
    structured strategy).
    """

    dag_name: str
    n: int
    r: int
    trivial_cost: int
    rbp_cost: Optional[int]
    rbp_exact: bool
    prbp_cost: Optional[int]
    prbp_exact: bool

    @property
    def gap(self) -> Optional[int]:
        """``RBP - PRBP`` cost difference (None if either side is unavailable)."""
        if self.rbp_cost is None or self.prbp_cost is None:
            return None
        return self.rbp_cost - self.prbp_cost

    @property
    def prbp_strictly_better(self) -> Optional[bool]:
        """True iff partial computations strictly reduce the (measured) cost."""
        gap = self.gap
        return None if gap is None else gap > 0


def compare_models(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    exact_node_limit: int = EXACT_NODE_LIMIT,
    max_states: int = 500_000,
) -> ModelComparison:
    """Compare RBP and PRBP costs on ``dag`` with capacity ``r``.

    Exhaustive optima are used when the DAG has at most ``exact_node_limit``
    nodes and the search stays within ``max_states``; otherwise the greedy
    upper-bound strategies are reported and flagged as inexact.
    """
    rbp_cost: Optional[int] = None
    prbp_cost: Optional[int] = None
    rbp_exact = prbp_exact = False
    use_exact = dag.n <= exact_node_limit
    if use_exact:
        try:
            rbp_cost = optimal_rbp_cost(dag, r, variant=variant, max_states=max_states)
            rbp_exact = True
        except SolverError:
            rbp_cost = None
        try:
            prbp_cost = optimal_prbp_cost(dag, r, variant=variant, max_states=max_states)
            prbp_exact = True
        except SolverError:
            prbp_cost = None
    if rbp_cost is None:
        try:
            rbp_cost = greedy_rbp_schedule(dag, r, variant=variant).cost()
        except SolverError:
            rbp_cost = None
    if prbp_cost is None:
        try:
            prbp_cost = topological_prbp_schedule(dag, r, variant=variant).cost()
        except SolverError:
            prbp_cost = None
    return ModelComparison(
        dag_name=dag.name,
        n=dag.n,
        r=r,
        trivial_cost=dag.trivial_cost(),
        rbp_cost=rbp_cost,
        rbp_exact=rbp_exact,
        prbp_cost=prbp_cost,
        prbp_exact=prbp_exact,
    )
