"""Comparison harnesses, parameter sweeps and table formatting."""

from .comparison import EXACT_NODE_LIMIT, ModelComparison, compare_models
from .reporting import format_markdown_table, format_table
from .sweep import SweepResult, run_solver_sweep, run_sweep

__all__ = [
    "EXACT_NODE_LIMIT",
    "ModelComparison",
    "compare_models",
    "format_markdown_table",
    "format_table",
    "SweepResult",
    "run_sweep",
    "run_solver_sweep",
]
