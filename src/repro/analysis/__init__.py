"""Comparison harnesses, parameter sweeps and table formatting."""

from .comparison import ModelComparison, compare_models
from .reporting import format_markdown_table, format_table
from .sweep import SweepResult, run_sweep

__all__ = [
    "ModelComparison",
    "compare_models",
    "format_markdown_table",
    "format_table",
    "SweepResult",
    "run_sweep",
]
