"""Plain-text table formatting used by the examples and benchmark harnesses.

The benchmarks regenerate the paper's quantitative claims as rows of small
tables; this module renders them consistently (fixed-width plain text and
GitHub-flavoured markdown) without pulling in any heavyweight dependency.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(rows: Sequence[Sequence[object]]) -> List[List[str]]:
    return [[f"{cell:.4g}" if isinstance(cell, float) else str(cell) for cell in row] for row in rows]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a fixed-width plain-text table (floats shown with 4 significant digits)."""
    str_rows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = _stringify(rows)
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
