"""Per-solve telemetry records — the input for a learned solver portfolio.

Every :func:`repro.api.dispatch.solve` call appends one
:class:`SolveTelemetry` record describing the instance (digest plus the
deterministic features from :mod:`repro.corpus.features`), what was
asked (requested solver, scalar options), what happened (solver used,
cost, bound gap, wall time, states expanded, per-attempt portfolio
timings), and — when a trace is active — the ``trace_id`` linking the
record to its spans.

Records land in a bounded in-memory ring (always on, cheap) and, when a
sink is configured, are appended as one JSON line each.  The sink is
configured via the ``REPRO_TELEMETRY_FILE`` environment variable so that
process-pool solve workers, which inherit the environment, append to the
same file as their parent.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

__all__ = [
    "SolveTelemetry",
    "TelemetryLog",
    "get_telemetry_log",
    "configure_telemetry",
    "read_telemetry_file",
]


@dataclass(frozen=True)
class SolveTelemetry:
    """One solve, summarised for offline portfolio analysis."""

    digest: str
    solver_requested: str
    solver_used: str
    cost: int
    lower_bound: Optional[int]
    gap: Optional[int]
    wall_time_s: float
    states_expanded: Optional[int]
    options: Dict[str, Any] = field(default_factory=dict)
    features: Dict[str, Any] = field(default_factory=dict)
    attempts: List[Dict[str, Any]] = field(default_factory=list)
    trace_id: Optional[str] = None
    ts: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "digest": self.digest,
            "solver_requested": self.solver_requested,
            "solver_used": self.solver_used,
            "cost": self.cost,
            "lower_bound": self.lower_bound,
            "gap": self.gap,
            "wall_time_s": self.wall_time_s,
            "states_expanded": self.states_expanded,
            "options": self.options,
            "features": self.features,
            "attempts": self.attempts,
            "ts": self.ts,
        }
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        return doc


class TelemetryLog:
    """Bounded ring of solve records plus an optional JSONL file sink."""

    def __init__(
        self,
        ring_entries: int = 1024,
        sink: Optional[Union[str, Path]] = None,
    ) -> None:
        self._ring: Deque[SolveTelemetry] = deque(maxlen=max(1, ring_entries))
        self._lock = threading.Lock()
        self._sink_path: Optional[Path] = Path(sink) if sink else None
        self._sink_handle: Optional[Any] = None
        self._sink_failed = False
        self.dropped_writes = 0

    @property
    def sink_path(self) -> Optional[Path]:
        return self._sink_path

    def record(self, entry: SolveTelemetry) -> None:
        with self._lock:
            self._ring.append(entry)
            if self._sink_path is not None and not self._sink_failed:
                try:
                    if self._sink_handle is None:
                        self._sink_path.parent.mkdir(parents=True, exist_ok=True)
                        self._sink_handle = open(
                            self._sink_path, "a", encoding="utf-8"
                        )
                    self._sink_handle.write(
                        json.dumps(entry.as_dict(), separators=(",", ":")) + "\n"
                    )
                    self._sink_handle.flush()
                except OSError:
                    self._sink_failed = True
                    self.dropped_writes += 1

    def recent(self, limit: Optional[int] = None) -> List[SolveTelemetry]:
        with self._lock:
            entries = list(self._ring)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def close(self) -> None:
        with self._lock:
            if self._sink_handle is not None:
                try:
                    self._sink_handle.close()
                except OSError:
                    pass
                self._sink_handle = None


_GLOBAL_LOG: Optional[TelemetryLog] = None
_GLOBAL_LOCK = threading.Lock()


def get_telemetry_log() -> TelemetryLog:
    """Process-global telemetry log.

    First use reads ``REPRO_TELEMETRY_FILE`` for the JSONL sink path; use
    :func:`configure_telemetry` to replace the log (tests, embedders).
    """

    global _GLOBAL_LOG
    with _GLOBAL_LOCK:
        if _GLOBAL_LOG is None:
            _GLOBAL_LOG = TelemetryLog(
                sink=os.environ.get("REPRO_TELEMETRY_FILE") or None
            )
        return _GLOBAL_LOG


def configure_telemetry(
    sink: Optional[Union[str, Path]] = None,
    ring_entries: int = 1024,
) -> TelemetryLog:
    """Replace the process-global telemetry log (closing the old sink)."""

    global _GLOBAL_LOG
    with _GLOBAL_LOCK:
        if _GLOBAL_LOG is not None:
            _GLOBAL_LOG.close()
        _GLOBAL_LOG = TelemetryLog(ring_entries=ring_entries, sink=sink)
        return _GLOBAL_LOG


def read_telemetry_file(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a telemetry JSONL file, skipping lines that fail to parse
    (concurrent appenders can tear a final partial line)."""

    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(doc, dict):
                records.append(doc)
    return records
