"""Span-based tracing with cross-node propagation.

A *trace* is a tree of spans sharing one ``trace_id``; spans carry a
``span_id`` and optional ``parent_id``.  Trace context is propagated two
ways:

- **In-process** via a :mod:`contextvars` variable, so nested
  ``tracer.span(...)`` blocks (and the solver portfolio in
  :mod:`repro.api.dispatch`) parent correctly without plumbing.
- **Cross-node** via an optional ``trace`` field on protocol solve
  frames (``{"trace_id": ..., "span_id": ...}``), which v3 peers ignore.

Finished spans land in a bounded in-memory ring buffer and, when a sink
path is configured, are appended as one JSON line each.  Each component
(service, router) owns its own :class:`Tracer` so multiple nodes hosted
in one process can write distinct node names; library code uses the
process-global tracer from :func:`get_tracer`, configurable via the
``REPRO_TRACE_FILE`` / ``REPRO_TRACE_NODE`` environment variables.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Union

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "new_trace_id",
    "new_span_id",
    "current_trace",
    "set_current_trace",
    "reset_current_trace",
    "get_tracer",
    "configure_tracer",
]


def new_trace_id() -> str:
    """128-bit random trace id as lowercase hex."""

    return os.urandom(16).hex()


def new_span_id() -> str:
    """64-bit random span id as lowercase hex."""

    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Identity of one span, as propagated to children and across nodes."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(doc: object) -> Optional["TraceContext"]:
        """Parse a wire ``trace`` field; returns None on anything malformed."""

        if not isinstance(doc, Mapping):
            return None
        trace_id = doc.get("trace_id")
        span_id = doc.get("span_id")
        if (
            isinstance(trace_id, str)
            and isinstance(span_id, str)
            and 0 < len(trace_id) <= 64
            and 0 < len(span_id) <= 64
        ):
            return TraceContext(trace_id=trace_id, span_id=span_id)
        return None


_current_trace: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> Optional[TraceContext]:
    """The ambient trace context for this task/thread, if any."""

    return _current_trace.get()


def set_current_trace(ctx: Optional[TraceContext]) -> contextvars.Token:
    """Set the ambient trace context; returns a token for reset."""

    return _current_trace.set(ctx)


def reset_current_trace(token: contextvars.Token) -> None:
    _current_trace.reset(token)


@dataclass
class Span:
    """One finished span.  ``start_s`` is wall-clock epoch seconds."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    node: str
    start_s: float
    duration_s: float
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "node": self.node,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.parent_id:
            doc["parent_id"] = self.parent_id
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc


class _ActiveSpan:
    """Handle yielded by :meth:`Tracer.span` for attaching attributes."""

    __slots__ = ("context", "attrs", "status", "_start_perf", "_start_wall")

    def __init__(self, context: TraceContext, attrs: Optional[Dict[str, Any]]) -> None:
        self.context = context
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self._start_perf = time.perf_counter()
        self._start_wall = time.time()

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_status(self, status: str) -> None:
        self.status = status


class Tracer:
    """Emits spans to a bounded ring buffer and an optional JSONL sink."""

    def __init__(
        self,
        node: str = "",
        ring_entries: int = 2048,
        sink: Optional[Union[str, Path]] = None,
    ) -> None:
        self.node = node
        self._ring: Deque[Span] = deque(maxlen=max(1, ring_entries))
        self._lock = threading.Lock()
        self._sink_path: Optional[Path] = Path(sink) if sink else None
        self._sink_handle: Optional[Any] = None
        self._sink_failed = False

    @property
    def sink_path(self) -> Optional[Path]:
        return self._sink_path

    # -- span creation -------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        parent: Optional[TraceContext] = None,
        node: Optional[str] = None,
    ) -> Iterator[_ActiveSpan]:
        """Context manager measuring one span.

        Parent resolution order: explicit ``parent`` argument, else the
        ambient contextvar, else a fresh trace is started.  While the
        block runs, the ambient context is this span's context, so nested
        spans (including ones emitted by other tracers) chain correctly.
        """

        effective_parent = parent if parent is not None else _current_trace.get()
        if effective_parent is not None:
            ctx = TraceContext(effective_parent.trace_id, new_span_id())
        else:
            ctx = TraceContext(new_trace_id(), new_span_id())
        active = _ActiveSpan(ctx, attrs)
        token = _current_trace.set(ctx)
        try:
            yield active
        except BaseException:
            active.status = "error"
            raise
        finally:
            _current_trace.reset(token)
            self._emit(
                Span(
                    trace_id=ctx.trace_id,
                    span_id=ctx.span_id,
                    parent_id=effective_parent.span_id if effective_parent else None,
                    name=name,
                    node=node if node is not None else self.node,
                    start_s=active._start_wall,
                    duration_s=time.perf_counter() - active._start_perf,
                    status=active.status,
                    attrs=active.attrs,
                )
            )

    def record(
        self,
        name: str,
        duration_s: float,
        parent: Optional[TraceContext] = None,
        attrs: Optional[Dict[str, Any]] = None,
        node: Optional[str] = None,
        end_s: Optional[float] = None,
        status: str = "ok",
    ) -> TraceContext:
        """Emit a retroactive span (e.g. queue wait measured after the fact).

        The span ends at ``end_s`` (default: now) and is backdated by
        ``duration_s``.  Returns the emitted span's context.
        """

        effective_parent = parent if parent is not None else _current_trace.get()
        if effective_parent is not None:
            ctx = TraceContext(effective_parent.trace_id, new_span_id())
        else:
            ctx = TraceContext(new_trace_id(), new_span_id())
        end = end_s if end_s is not None else time.time()
        self._emit(
            Span(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_id=effective_parent.span_id if effective_parent else None,
                name=name,
                node=node if node is not None else self.node,
                start_s=end - duration_s,
                duration_s=duration_s,
                status=status,
                attrs=dict(attrs) if attrs else {},
            )
        )
        return ctx

    # -- emission ------------------------------------------------------------

    def _emit(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            if self._sink_path is not None and not self._sink_failed:
                try:
                    if self._sink_handle is None:
                        self._sink_path.parent.mkdir(parents=True, exist_ok=True)
                        self._sink_handle = open(
                            self._sink_path, "a", encoding="utf-8"
                        )
                    self._sink_handle.write(
                        json.dumps(span.as_dict(), separators=(",", ":")) + "\n"
                    )
                    self._sink_handle.flush()
                except OSError:
                    # A broken sink must never take down request handling;
                    # stop trying rather than raising on every span.
                    self._sink_failed = True

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most recent finished spans (oldest first), as dicts."""

        with self._lock:
            spans = list(self._ring)
        if limit is not None:
            spans = spans[-limit:]
        return [span.as_dict() for span in spans]

    def close(self) -> None:
        with self._lock:
            if self._sink_handle is not None:
                try:
                    self._sink_handle.close()
                except OSError:
                    pass
                self._sink_handle = None


_GLOBAL_TRACER: Optional[Tracer] = None
_GLOBAL_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """Process-global tracer for library code without an owning component.

    First use reads ``REPRO_TRACE_FILE`` (JSONL sink path, optional) and
    ``REPRO_TRACE_NODE`` (node name, optional).  The environment lookup
    happens once; use :func:`configure_tracer` to replace it.
    """

    global _GLOBAL_TRACER
    with _GLOBAL_TRACER_LOCK:
        if _GLOBAL_TRACER is None:
            _GLOBAL_TRACER = Tracer(
                node=os.environ.get("REPRO_TRACE_NODE", ""),
                sink=os.environ.get("REPRO_TRACE_FILE") or None,
            )
        return _GLOBAL_TRACER


def configure_tracer(
    node: str = "",
    sink: Optional[Union[str, Path]] = None,
    ring_entries: int = 2048,
) -> Tracer:
    """Replace the process-global tracer (closing the previous sink)."""

    global _GLOBAL_TRACER
    with _GLOBAL_TRACER_LOCK:
        if _GLOBAL_TRACER is not None:
            _GLOBAL_TRACER.close()
        _GLOBAL_TRACER = Tracer(node=node, sink=sink, ring_entries=ring_entries)
        return _GLOBAL_TRACER
