"""Observability primitives: metrics registry, tracing, solve telemetry.

Everything in this package is stdlib-only and safe to import from any
layer of the system (it has no dependencies on :mod:`repro.api` or
:mod:`repro.service`).
"""

from repro.obs.metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    exponential_buckets,
    summarise_buckets,
)
from repro.obs.telemetry import (
    SolveTelemetry,
    TelemetryLog,
    configure_telemetry,
    get_telemetry_log,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    configure_tracer,
    current_trace,
    get_tracer,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "exponential_buckets",
    "summarise_buckets",
    "SolveTelemetry",
    "TelemetryLog",
    "configure_telemetry",
    "get_telemetry_log",
    "Span",
    "TraceContext",
    "Tracer",
    "configure_tracer",
    "current_trace",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
]
