"""A small, stdlib-only metrics registry.

Three instrument kinds — counters, gauges, and fixed-bucket histograms —
each of which is a *family*: a named metric plus a tuple of label names,
holding one concrete time series per distinct label-value combination.

Design points:

- **Thread/asyncio safe.**  All mutation happens under a single
  per-registry :class:`threading.Lock`.  asyncio callers share the same
  lock via the event-loop thread; cross-thread increments (the worker
  pool's thread mode) are serialised the same way.  Individual updates
  are O(1) dictionary operations, so contention is negligible at the
  request rates this service handles.
- **Cardinality guard.**  A family refuses to materialise more than
  ``max_series`` distinct label combinations.  Excess observations are
  folded into a single overflow series (every label value replaced by
  ``"~overflow"``) and counted in the registry-level
  ``repro_metrics_dropped_series_total`` counter, so a buggy caller that
  labels by request id degrades gracefully instead of eating memory.
- **Two export formats.**  :meth:`MetricsRegistry.snapshot` renders a
  plain-JSON document (used by the ``metrics --json`` CLI and by tests);
  :meth:`MetricsRegistry.exposition` renders Prometheus-style text
  exposition (``# HELP`` / ``# TYPE`` / cumulative ``_bucket`` lines).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "exponential_buckets",
    "summarise_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label value used for the fold-in series once a family exceeds its
#: cardinality budget.
OVERFLOW_LABEL_VALUE = "~overflow"

#: Default per-family cap on distinct label combinations.
DEFAULT_MAX_SERIES = 256

#: Histogram bucket bounds used for request/solve latencies, in seconds.
#: 1 ms .. ~131 s in powers of two; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    0.001 * (2.0**i) for i in range(18)
)


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """Return ``count`` ascending bucket upper bounds ``start * factor**i``.

    The implicit ``+Inf`` bucket is not included; histograms add it
    themselves.
    """

    if start <= 0.0:
        raise ValueError("bucket start must be positive")
    if factor <= 1.0:
        raise ValueError("bucket factor must be > 1")
    if count < 1:
        raise ValueError("bucket count must be >= 1")
    return tuple(start * (factor**i) for i in range(count))


def _quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    q: float,
) -> float:
    """Estimate quantile ``q`` by linear interpolation within buckets.

    ``bounds`` are the finite upper bounds; ``counts`` are per-bucket
    (non-cumulative) observation counts with one extra trailing entry for
    the +Inf bucket.  Returns the interpolated value, clamping the +Inf
    bucket to its lower bound (the usual Prometheus convention).
    """

    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if bucket_count <= 0:
            continue
        if cumulative + bucket_count >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            if i >= len(bounds):  # +Inf bucket: clamp to its lower edge
                return bounds[-1] if bounds else 0.0
            upper = bounds[i]
            fraction = (rank - cumulative) / bucket_count
            return lower + (upper - lower) * fraction
        cumulative += bucket_count
    return bounds[-1] if bounds else 0.0


def summarise_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    total_sum: float,
) -> Dict[str, float]:
    """Summarise a histogram series: count, sum, mean, p50/p90/p99.

    ``counts`` must include the trailing +Inf bucket (``len(bounds)+1``
    entries).  Quantiles are bucket-interpolated estimates.
    """

    total = sum(counts)
    summary: Dict[str, float] = {
        "count": float(total),
        "sum": total_sum,
        "mean": (total_sum / total) if total else 0.0,
    }
    for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        summary[label] = _quantile_from_buckets(bounds, counts, total, q)
    return summary


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Family:
    """Common behaviour: label handling, series storage, cardinality guard."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labels: Tuple[str, ...],
        max_series: int,
    ) -> None:
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help = help_text
        self.labels = labels
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _label_key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labels):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labels}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labels)

    def _series_for(self, key: Tuple[str, ...]) -> Any:
        """Fetch or create the series for ``key``; caller holds the lock."""

        series = self._series.get(key)
        if series is not None:
            return series
        if len(self._series) >= self.max_series:
            overflow_key = tuple(OVERFLOW_LABEL_VALUE for _ in self.labels)
            series = self._series.get(overflow_key)
            self._registry._note_dropped_series(self.name)
            if series is None:
                series = self._new_series()
                self._series[overflow_key] = series
            return series
        series = self._new_series()
        self._series[key] = series
        return series

    def _new_series(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def series_count(self) -> int:
        with self._lock:
            return len(self._series)


class CounterFamily(_Family):
    """Monotonically increasing counter family."""

    kind = "counter"

    def _new_series(self) -> List[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._label_key(labels)
        with self._lock:
            self._series_for(key)[0] += amount

    def value(self, **labels: object) -> float:
        key = self._label_key(labels)
        with self._lock:
            series = self._series.get(key)
            return series[0] if series is not None else 0.0

    def values(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return {key: cell[0] for key, cell in self._series.items()}


class GaugeFamily(_Family):
    """Gauge family: a value that can go up and down."""

    kind = "gauge"

    def _new_series(self) -> List[float]:
        return [0.0]

    def set(self, value: float, **labels: object) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._series_for(key)[0] = value

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._series_for(key)[0] += amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._label_key(labels)
        with self._lock:
            series = self._series.get(key)
            return series[0] if series is not None else 0.0


class _HistogramSeries:
    __slots__ = ("counts", "total", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # trailing +Inf bucket
        self.total = 0
        self.sum = 0.0


class HistogramFamily(_Family):
    """Fixed-bucket histogram family.

    ``buckets`` are ascending finite upper bounds (``value <= bound``
    lands in that bucket); an implicit +Inf bucket catches the rest.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labels: Tuple[str, ...],
        buckets: Tuple[float, ...],
        max_series: int,
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= 0 for b in buckets) or any(
            buckets[i] >= buckets[i + 1] for i in range(len(buckets) - 1)
        ):
            raise ValueError("histogram buckets must be positive and ascending")
        super().__init__(registry, name, help_text, labels, max_series)
        self.buckets = buckets

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.buckets))

    def _bucket_index(self, value: float) -> int:
        """Index of the first bucket whose bound is >= value (binary search)."""

        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo  # == len(buckets) means +Inf

    def observe(self, value: float, **labels: object) -> None:
        key = self._label_key(labels)
        index = self._bucket_index(value)
        with self._lock:
            series = self._series_for(key)
            series.counts[index] += 1
            series.total += 1
            series.sum += value

    def summary(self, **labels: object) -> Dict[str, float]:
        key = self._label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return summarise_buckets(self.buckets, [0] * (len(self.buckets) + 1), 0.0)
            counts = list(series.counts)
            total_sum = series.sum
        return summarise_buckets(self.buckets, counts, total_sum)

    def merged_summary(self) -> Dict[str, float]:
        """Summary over *all* series of this family combined."""

        with self._lock:
            counts = [0] * (len(self.buckets) + 1)
            total_sum = 0.0
            for series in self._series.values():
                for i, c in enumerate(series.counts):
                    counts[i] += c
                total_sum += series.sum
        return summarise_buckets(self.buckets, counts, total_sum)


class MetricsRegistry:
    """Process- or component-scoped collection of metric families.

    Each service/router instance owns its own registry so that several
    nodes hosted in one process (tests, ``cluster-smoke``) do not merge
    their counters.  Library-level metrics that have no owning component
    use :func:`get_global_registry`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._dropped_series: Dict[str, int] = {}

    # -- family constructors -------------------------------------------------

    def _register(self, family: _Family) -> _Family:
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name: {family.name!r}")
        for label in family.labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        if family.kind == "histogram" and "le" in family.labels:
            raise ValueError("histograms reserve the 'le' label for bucket bounds")
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if existing.kind != family.kind or existing.labels != family.labels:
                    raise ValueError(
                        f"metric {family.name!r} already registered with a "
                        f"different kind or label set"
                    )
                return existing
            self._families[family.name] = family
        return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> CounterFamily:
        family = self._register(
            CounterFamily(self, name, help_text, tuple(labels), max_series)
        )
        assert isinstance(family, CounterFamily)
        return family

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> GaugeFamily:
        family = self._register(
            GaugeFamily(self, name, help_text, tuple(labels), max_series)
        )
        assert isinstance(family, GaugeFamily)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> HistogramFamily:
        family = self._register(
            HistogramFamily(
                self, name, help_text, tuple(labels), tuple(buckets), max_series
            )
        )
        assert isinstance(family, HistogramFamily)
        return family

    # -- cardinality guard ---------------------------------------------------

    def _note_dropped_series(self, family_name: str) -> None:
        # Caller already holds self._lock.
        self._dropped_series[family_name] = self._dropped_series.get(family_name, 0) + 1

    def dropped_series(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._dropped_series)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON snapshot of every family and series."""

        doc: Dict[str, Any] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            entry: Dict[str, Any] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labels),
                "series": [],
            }
            with self._lock:
                items = list(family._series.items())
                if isinstance(family, HistogramFamily):
                    items = [
                        (key, (list(s.counts), s.total, s.sum)) for key, s in items
                    ]
                else:
                    items = [(key, cell[0]) for key, cell in items]
            for key, payload in sorted(items):
                labels = dict(zip(family.labels, key))
                if isinstance(family, HistogramFamily):
                    counts, total, total_sum = payload
                    entry["series"].append(
                        {
                            "labels": labels,
                            "count": total,
                            "sum": total_sum,
                            "buckets": [
                                [bound, counts[i]]
                                for i, bound in enumerate(family.buckets)
                            ]
                            + [["+Inf", counts[-1]]],
                        }
                    )
                else:
                    entry["series"].append({"labels": labels, "value": payload})
            doc[family.name] = entry
        dropped = self.dropped_series()
        if dropped:
            doc["_dropped_series"] = dropped
        return doc

    def exposition(self) -> str:
        """Prometheus-style text exposition of every family."""

        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            with self._lock:
                items = sorted(family._series.items())
                if isinstance(family, HistogramFamily):
                    rendered = [
                        (key, (list(s.counts), s.total, s.sum)) for key, s in items
                    ]
                else:
                    rendered = [(key, cell[0]) for key, cell in items]
            for key, payload in rendered:
                if isinstance(family, HistogramFamily):
                    counts, total, total_sum = payload
                    cumulative = 0
                    for i, bound in enumerate(family.buckets):
                        cumulative += counts[i]
                        bucket_labels = _format_labels(
                            family.labels + ("le",),
                            key + (_format_value(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    cumulative += counts[-1]
                    inf_labels = _format_labels(
                        family.labels + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{family.name}_bucket{inf_labels} {cumulative}")
                    plain = _format_labels(family.labels, key)
                    lines.append(f"{family.name}_sum{plain} {_format_value(total_sum)}")
                    lines.append(f"{family.name}_count{plain} {total}")
                else:
                    plain = _format_labels(family.labels, key)
                    lines.append(f"{family.name}{plain} {_format_value(payload)}")
        dropped = self.dropped_series()
        if dropped:
            lines.append("# TYPE repro_metrics_dropped_series_total counter")
            for name, count in sorted(dropped.items()):
                labels = _format_labels(("family",), (name,))
                lines.append(f"repro_metrics_dropped_series_total{labels} {count}")
        return "\n".join(lines) + "\n"

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """Merged per-family summaries for every histogram in the registry."""

        with self._lock:
            histograms = [
                f for f in self._families.values() if isinstance(f, HistogramFamily)
            ]
        return {h.name: h.merged_summary() for h in sorted(histograms, key=lambda f: f.name)}


_GLOBAL_REGISTRY: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def get_global_registry() -> MetricsRegistry:
    """Process-wide registry for library-level (component-less) metrics."""

    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse text exposition back into ``{name: {"type":..., "samples":[...]}}``.

    Intentionally small — enough for CI assertions and tests, not a full
    Prometheus parser.  Sample entries are ``(labels_dict, value)`` pairs
    keyed under the *sample* name (so histogram ``_bucket``/``_sum``/
    ``_count`` samples appear under those suffixed names).
    """

    families: Dict[str, Dict[str, Any]] = {}
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            parts = rest.split()
            if len(parts) == 2:
                families[parts[0]] = {"type": parts[1], "samples": []}
            continue
        if line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$", line)
        if not match:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name, label_blob, value_text = match.groups()
        labels: Dict[str, str] = {}
        if label_blob:
            for lm in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', label_blob):
                value = lm.group(2)
                value = (
                    value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                labels[lm.group(1)] = value
        value = math.inf if value_text == "+Inf" else float(value_text)
        samples.setdefault(name, []).append((labels, value))
    for name, entries in samples.items():
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        target = families.setdefault(base, {"type": "untyped", "samples": []})
        if base != name:
            target.setdefault(name, []).extend(entries)
        else:
            target["samples"].extend(entries)
    return families


def iter_histogram_series(
    snapshot: Mapping[str, Any], name: str
) -> Iterable[Dict[str, Any]]:
    """Yield histogram series dicts for ``name`` from a snapshot document."""

    entry = snapshot.get(name)
    if not entry or entry.get("type") != "histogram":
        return
    yield from entry.get("series", [])
